#include <gtest/gtest.h>

#include "green/dynamic_green.hpp"
#include "green/green_opt.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"

namespace ppg {
namespace {

constexpr Time kS = 8;

TEST(EpochSchedule, LookupByPosition) {
  const EpochSchedule schedule({{0, HeightLadder{2, 16}},
                                {100, HeightLadder{4, 16}},
                                {250, HeightLadder{8, 16}}});
  EXPECT_EQ(schedule.num_epochs(), 3u);
  EXPECT_EQ(schedule.ladder_at(0).h_min, 2u);
  EXPECT_EQ(schedule.ladder_at(99).h_min, 2u);
  EXPECT_EQ(schedule.ladder_at(100).h_min, 4u);
  EXPECT_EQ(schedule.ladder_at(249).h_min, 4u);
  EXPECT_EQ(schedule.ladder_at(1000000).h_min, 8u);
}

TEST(EpochSchedule, DoublingMinBuilder) {
  const EpochSchedule schedule =
      EpochSchedule::doubling_min(2, 32, {100, 200, 300, 400});
  EXPECT_EQ(schedule.num_epochs(), 5u);
  EXPECT_EQ(schedule.ladder_at(0).h_min, 2u);
  EXPECT_EQ(schedule.ladder_at(150).h_min, 4u);
  EXPECT_EQ(schedule.ladder_at(450).h_min, 32u);  // clamped at h_max
  EXPECT_EQ(schedule.ladder_at(450).h_max, 32u);
}

TEST(EpochSchedule, RejectsBadSchedules) {
  EXPECT_DEATH(EpochSchedule({}), "at least one epoch");
  EXPECT_DEATH(EpochSchedule({{5, HeightLadder{2, 8}}}), "position 0");
  EXPECT_DEATH(EpochSchedule({{0, HeightLadder{2, 8}},
                              {10, HeightLadder{2, 8}},
                              {10, HeightLadder{4, 8}}}),
               "strictly increasing");
}

TEST(DynamicGreen, SingleEpochMatchesStaticRunner) {
  Rng rng(1);
  const Trace t = gen::zipf(20, 1500, 0.9, rng);
  const HeightLadder ladder{2, 16};
  auto pager_a = make_det_green(ladder);
  auto pager_b = make_det_green(ladder);
  const ProfileRunResult stat = run_green_paging(t, *pager_a, kS);
  const DynamicGreenResult dyn = run_green_paging_dynamic(
      t, *pager_b, EpochSchedule::constant(ladder), kS);
  EXPECT_EQ(dyn.run.impact, stat.impact);
  EXPECT_EQ(dyn.run.time, stat.time);
  EXPECT_EQ(dyn.reboots, 0u);
}

TEST(DynamicGreen, RebootsFireAtEpochBoundaries) {
  const Trace t = gen::single_use(600);
  const EpochSchedule schedule =
      EpochSchedule::doubling_min(2, 16, {200, 400});
  auto pager = make_det_green(HeightLadder{2, 16});
  const DynamicGreenResult r =
      run_green_paging_dynamic(t, *pager, schedule, kS);
  EXPECT_EQ(r.reboots, 2u);
  EXPECT_EQ(r.run.hits + r.run.misses, t.size());
}

TEST(DynamicGreen, RisingMinimumRaisesCost) {
  // On a pure stream, the optimal is always the minimum height; raising
  // the minimum threshold mid-run must strictly raise the optimal cost.
  const Trace t = gen::single_use(1000);
  const Impact flat = green_opt_impact_dynamic(
      t, EpochSchedule::constant(HeightLadder{2, 16}), kS);
  const Impact rising = green_opt_impact_dynamic(
      t, EpochSchedule::doubling_min(2, 16, {200, 400, 600}), kS);
  EXPECT_GT(rising, flat);
  // And the flat dynamic DP agrees with the classic one.
  EXPECT_EQ(flat, green_opt_impact(t, HeightLadder{2, 16}, kS));
}

class DynamicOptIsLowerBound : public ::testing::TestWithParam<GreenKind> {};

TEST_P(DynamicOptIsLowerBound, PagersNeverBeatDynamicDp) {
  Rng rng(3);
  const std::vector<Trace> traces{
      gen::cyclic(10, 900),
      gen::single_use(800),
      gen::zipf(24, 900, 1.0, rng),
  };
  const EpochSchedule schedule =
      EpochSchedule::doubling_min(2, 16, {300, 600});
  for (const Trace& t : traces) {
    const Impact opt = green_opt_impact_dynamic(t, schedule, kS);
    auto pager =
        make_green_pager(GetParam(), schedule.epoch(0).ladder, Rng(9));
    const DynamicGreenResult r =
        run_green_paging_dynamic(t, *pager, schedule, kS);
    EXPECT_GE(r.run.impact, opt) << green_kind_name(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(Pagers, DynamicOptIsLowerBound,
                         ::testing::Values(GreenKind::kRand, GreenKind::kDet,
                                           GreenKind::kFixedMin));

TEST(DynamicGreen, PagerHeightsConformPerEpoch) {
  // After a reboot the pager must emit heights on the NEW ladder — the
  // runner enforces it; this exercises the enforcement across epochs.
  const Trace t = gen::single_use(500);
  const EpochSchedule schedule =
      EpochSchedule::doubling_min(4, 32, {100, 200, 300});
  auto pager = make_rand_green(HeightLadder{4, 32}, Rng(11));
  const DynamicGreenResult r =
      run_green_paging_dynamic(t, *pager, schedule, kS);
  EXPECT_EQ(r.run.hits + r.run.misses, t.size());
  EXPECT_GE(r.reboots, 3u);
}

}  // namespace
}  // namespace ppg
