// Determinism suite for the parallel sweep executor: identical cell inputs
// must produce byte-identical rendered output at every --jobs value and
// across repeated runs. scripts/tier1.sh re-runs this suite under
// ThreadSanitizer (PPG_SANITIZE=thread) to race the same code paths.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bench_support/parallel_sweep.hpp"
#include "trace/workload.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace ppg {
namespace {

TEST(ParallelSweep, JobsFromArgsParsesFlagForms) {
  const auto parse = [](std::vector<const char*> argv) {
    argv.insert(argv.begin(), "prog");
    const ArgParser args(static_cast<int>(argv.size()), argv.data());
    return jobs_from_args(args);
  };
  EXPECT_EQ(parse({}), 1u);  // default: serial
  EXPECT_EQ(parse({"--jobs", "3"}), 3u);
  EXPECT_EQ(parse({"--jobs=5"}), 5u);
  EXPECT_EQ(parse({"--jobs", "max"}), ThreadPool::hardware_jobs());
  EXPECT_EQ(parse({"--jobs", "0"}), ThreadPool::hardware_jobs());
  EXPECT_THROW(parse({"--jobs", "-1"}), PpgException);
  EXPECT_THROW(parse({"--jobs", "many"}), PpgException);
}

TEST(ParallelSweep, CellSeedIsPureAndSpreads) {
  // Pure function of (base, index)...
  EXPECT_EQ(cell_seed(42, 7), cell_seed(42, 7));
  // ...and collision-free over a realistic sweep size.
  std::set<std::uint64_t> seen;
  for (std::size_t i = 0; i < 10000; ++i) seen.insert(cell_seed(42, i));
  EXPECT_EQ(seen.size(), 10000u);
  // Different bases decorrelate.
  EXPECT_NE(cell_seed(1, 0), cell_seed(2, 0));
}

TEST(ParallelSweep, SweepCellsPreservesEnumerationOrder) {
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{2},
                                 ThreadPool::hardware_jobs()}) {
    const std::vector<std::size_t> out =
        sweep_cells(jobs, 257, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 257u);
    for (std::size_t i = 0; i < out.size(); ++i)
      ASSERT_EQ(out[i], i * i) << "jobs=" << jobs;
  }
}

// Renders every field a bench table would consume with full precision, so
// equality of the strings is equality of the published numbers.
std::string render_outcomes(const std::vector<InstanceOutcome>& outcomes) {
  std::ostringstream os;
  os.precision(17);
  for (const InstanceOutcome& io : outcomes) {
    os << "LB=" << io.bounds.lower_bound() << "\n";
    for (const SchedulerOutcome& so : io.outcomes) {
      os << so.name << " ok=" << so.status.ok()
         << " makespan=" << so.result.makespan
         << " mean_ct=" << so.result.mean_completion
         << " misses=" << so.result.misses
         << " ratio=" << so.makespan_ratio << " ctr=" << so.mean_ct_ratio
         << "\n";
    }
  }
  return os.str();
}

std::vector<InstanceCell> make_cells() {
  std::vector<InstanceCell> cells;
  std::size_t index = 0;
  for (const WorkloadKind wkind :
       {WorkloadKind::kCacheHungry, WorkloadKind::kHeterogeneousMix}) {
    for (const ProcId p : {2u, 4u}) {
      WorkloadParams wp;
      wp.num_procs = p;
      wp.cache_size = 8 * p;
      wp.requests_per_proc = 400;
      wp.seed = cell_seed(5, index++);
      InstanceCell cell;
      cell.sources = make_workload_source(wkind, wp);
      cell.kinds = all_scheduler_kinds();
      cell.config.cache_size = wp.cache_size;
      cell.config.miss_cost = 8;
      cell.config.seed = 3;
      cells.push_back(std::move(cell));
    }
  }
  return cells;
}

TEST(ParallelSweep, RunInstancesByteIdenticalAcrossJobs) {
  const std::vector<InstanceCell> cells = make_cells();
  const std::string serial = render_outcomes(run_instances(cells, 1));
  EXPECT_FALSE(serial.empty());
  for (const std::size_t jobs : {std::size_t{2},
                                 ThreadPool::hardware_jobs()}) {
    EXPECT_EQ(render_outcomes(run_instances(cells, jobs)), serial)
        << "jobs=" << jobs;
  }
}

TEST(ParallelSweep, RunInstancesByteIdenticalAcrossRepeats) {
  const std::vector<InstanceCell> cells = make_cells();
  const std::string first = render_outcomes(run_instances(cells, 2));
  EXPECT_EQ(render_outcomes(run_instances(cells, 2)), first);
}

TEST(ParallelSweep, CellExceptionPropagatesToCaller) {
  EXPECT_THROW(sweep_cells(2, 8,
                           [](std::size_t i) -> int {
                             if (i == 3) throw std::runtime_error("cell");
                             return 0;
                           }),
               std::runtime_error);
}

}  // namespace
}  // namespace ppg
