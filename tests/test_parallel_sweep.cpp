// Determinism suite for the parallel sweep executor: identical cell inputs
// must produce byte-identical rendered output at every --jobs value and
// across repeated runs. scripts/tier1.sh re-runs this suite under
// ThreadSanitizer (PPG_SANITIZE=thread) to race the same code paths.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bench_support/parallel_sweep.hpp"
#include "trace/workload.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace ppg {
namespace {

TEST(ParallelSweep, JobsFromArgsParsesFlagForms) {
  const auto parse = [](std::vector<const char*> argv) {
    argv.insert(argv.begin(), "prog");
    const ArgParser args(static_cast<int>(argv.size()), argv.data());
    return jobs_from_args(args);
  };
  EXPECT_EQ(parse({}), 1u);  // default: serial
  EXPECT_EQ(parse({"--jobs", "3"}), 3u);
  EXPECT_EQ(parse({"--jobs=5"}), 5u);
  EXPECT_EQ(parse({"--jobs", "max"}), ThreadPool::hardware_jobs());
  EXPECT_EQ(parse({"--jobs", "0"}), ThreadPool::hardware_jobs());
  EXPECT_THROW(parse({"--jobs", "-1"}), PpgException);
  EXPECT_THROW(parse({"--jobs", "many"}), PpgException);
}

TEST(ParallelSweep, CellSeedIsPureAndSpreads) {
  // Pure function of (base, index)...
  EXPECT_EQ(cell_seed(42, 7), cell_seed(42, 7));
  // ...and collision-free over a realistic sweep size.
  std::set<std::uint64_t> seen;
  for (std::size_t i = 0; i < 10000; ++i) seen.insert(cell_seed(42, i));
  EXPECT_EQ(seen.size(), 10000u);
  // Different bases decorrelate.
  EXPECT_NE(cell_seed(1, 0), cell_seed(2, 0));
}

TEST(ParallelSweep, SweepCellsPreservesEnumerationOrder) {
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{2},
                                 ThreadPool::hardware_jobs()}) {
    const std::vector<std::size_t> out =
        sweep_cells(jobs, 257, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 257u);
    for (std::size_t i = 0; i < out.size(); ++i)
      ASSERT_EQ(out[i], i * i) << "jobs=" << jobs;
  }
}

// Renders every field a bench table would consume with full precision, so
// equality of the strings is equality of the published numbers.
std::string render_outcomes(const std::vector<InstanceOutcome>& outcomes) {
  std::ostringstream os;
  os.precision(17);
  for (const InstanceOutcome& io : outcomes) {
    os << "LB=" << io.bounds.lower_bound() << "\n";
    for (const SchedulerOutcome& so : io.outcomes) {
      os << so.name << " ok=" << so.status.ok()
         << " makespan=" << so.result.makespan
         << " mean_ct=" << so.result.mean_completion
         << " misses=" << so.result.misses
         << " ratio=" << so.makespan_ratio << " ctr=" << so.mean_ct_ratio
         << "\n";
    }
  }
  return os.str();
}

std::vector<InstanceCell> make_cells() {
  std::vector<InstanceCell> cells;
  std::size_t index = 0;
  for (const WorkloadKind wkind :
       {WorkloadKind::kCacheHungry, WorkloadKind::kHeterogeneousMix}) {
    for (const ProcId p : {2u, 4u}) {
      WorkloadParams wp;
      wp.num_procs = p;
      wp.cache_size = 8 * p;
      wp.requests_per_proc = 400;
      wp.seed = cell_seed(5, index++);
      InstanceCell cell;
      cell.sources = make_workload_source(wkind, wp);
      cell.kinds = all_scheduler_kinds();
      cell.config.cache_size = wp.cache_size;
      cell.config.miss_cost = 8;
      cell.config.seed = 3;
      cells.push_back(std::move(cell));
    }
  }
  return cells;
}

TEST(ParallelSweep, RunInstancesByteIdenticalAcrossJobs) {
  const std::vector<InstanceCell> cells = make_cells();
  const std::string serial = render_outcomes(run_instances(cells, 1));
  EXPECT_FALSE(serial.empty());
  for (const std::size_t jobs : {std::size_t{2},
                                 ThreadPool::hardware_jobs()}) {
    EXPECT_EQ(render_outcomes(run_instances(cells, jobs)), serial)
        << "jobs=" << jobs;
  }
}

TEST(ParallelSweep, RunInstancesByteIdenticalAcrossRepeats) {
  const std::vector<InstanceCell> cells = make_cells();
  const std::string first = render_outcomes(run_instances(cells, 2));
  EXPECT_EQ(render_outcomes(run_instances(cells, 2)), first);
}

TEST(ParallelSweep, CellExceptionPropagatesToCaller) {
  EXPECT_THROW(sweep_cells(2, 8,
                           [](std::size_t i) -> int {
                             if (i == 3) throw std::runtime_error("cell");
                             return 0;
                           }),
               std::runtime_error);
}

// --- sharding -------------------------------------------------------------

ArgParser make_args(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(ParallelSweep, ShardFromArgsParsesFlagForms) {
  EXPECT_FALSE(shard_from_args(make_args({})).sharded());
  const ShardSpec spec = shard_from_args(make_args({"--shard", "1/4"}));
  EXPECT_EQ(spec.index, 1u);
  EXPECT_EQ(spec.count, 4u);
  EXPECT_TRUE(spec.sharded());
  EXPECT_EQ(spec.to_string(), "1/4");
  EXPECT_FALSE(shard_from_args(make_args({"--shard", "0/1"})).sharded());
  for (const char* bad : {"4/4", "5/4", "1-4", "1/", "/4", "x/y", "1/0",
                          "-1/4", "1/4/2", ""}) {
    EXPECT_THROW(shard_from_args(make_args({"--shard", bad})), PpgException)
        << "accepted --shard " << bad;
  }
}

TEST(ParallelSweep, ShardOwnershipIsRoundRobinAndPartitions) {
  for (std::uint32_t count : {2u, 3u, 4u}) {
    for (std::uint64_t cell = 0; cell < 40; ++cell) {
      std::size_t owners = 0;
      for (std::uint32_t i = 0; i < count; ++i) {
        if (ShardSpec{i, count}.owns(cell)) ++owners;
      }
      EXPECT_EQ(owners, 1u) << "cell " << cell << " of /" << count;
      const ShardSpec owner{static_cast<std::uint32_t>(cell % count), count};
      EXPECT_TRUE(owner.owns(cell));
    }
  }
  // The identity shard owns everything.
  EXPECT_TRUE(ShardSpec{}.owns(0));
  EXPECT_TRUE(ShardSpec{}.owns(12345));
}

TEST(ParallelSweep, ShardBindingFoldRoundTrips) {
  const ShardSpec spec{2, 4};
  const std::string folded = apply_shard_binding("bench v1 quick=1", spec);
  EXPECT_EQ(folded, "bench v1 quick=1 shard=2/4");
  const auto [base, parsed] = strip_shard_binding(folded);
  EXPECT_EQ(base, "bench v1 quick=1");
  EXPECT_EQ(parsed.index, 2u);
  EXPECT_EQ(parsed.count, 4u);
  // Identity shards fold to the bare base, and strip back to identity.
  EXPECT_EQ(apply_shard_binding("bench v1", ShardSpec{}), "bench v1");
  const auto [plain_base, plain_spec] = strip_shard_binding("bench v1");
  EXPECT_EQ(plain_base, "bench v1");
  EXPECT_FALSE(plain_spec.sharded());
}

TEST(ParallelSweep, ShardRequiresJournal) {
  try {
    sweep_cli_from_args(make_args({"--shard", "0/2"}), "bench v1");
    FAIL() << "sharded run accepted without --journal";
  } catch (const PpgException& e) {
    EXPECT_EQ(e.error().code, ErrorCode::kBadInput);
    EXPECT_NE(e.error().message.find("--journal"), std::string::npos);
  }
  EXPECT_THROW(sweep_cli_from_args(make_args({"--steal-lease"}), "bench v1"),
               PpgException);
}

TEST(ParallelSweep, ShardedSweepComputesOnlyItsSlice) {
  const std::string path =
      testing::TempDir() + "ppg_shard_slice_test.ppgjrnl";
  std::remove(path.c_str());
  const char* shard_argv[] = {"prog", "--shard", "1/3", "--journal",
                              path.c_str()};
  const SweepCli cli = sweep_cli_from_args(ArgParser(5, shard_argv),
                                           "bench v1");
  ASSERT_TRUE(cli.sharded());
  ASSERT_NE(cli.journal, nullptr);
  EXPECT_EQ(cli.journal->binding(), "bench v1 shard=1/3");

  std::set<std::size_t> touched;
  const auto out = sweep_cells(
      cli.options, 10,
      [&](std::size_t i) {
        touched.insert(i);
        return cell_seed(3, i);
      },
      [](CellWriter& w, const std::uint64_t& v) { w.u64(v); },
      [](CellReader& r) { return r.u64(); });
  EXPECT_EQ(touched, (std::set<std::size_t>{1, 4, 7}));
  EXPECT_EQ(cli.journal->num_records(), 3u);
  ASSERT_EQ(out.size(), 10u);
  for (const std::size_t i : {1u, 4u, 7u}) EXPECT_EQ(out[i], cell_seed(3, i));
  for (const std::size_t i : {0u, 2u, 3u}) EXPECT_EQ(out[i], 0u)
      << "non-owned slot was computed";
  std::remove(path.c_str());
  std::remove((path + ".lock").c_str());
}

TEST(ParallelSweep, ShardEpilogueSkipsRenderingForWorkers) {
  const std::string path =
      testing::TempDir() + "ppg_shard_epilogue_test.ppgjrnl";
  std::remove(path.c_str());
  const char* shard_argv[] = {"prog", "--shard", "0/2", "--journal",
                              path.c_str()};
  {
    const SweepCli cli = sweep_cli_from_args(ArgParser(5, shard_argv),
                                             "bench v1");
    cli.journal->append(0, 0, "x");
    std::ostringstream os;
    EXPECT_TRUE(shard_epilogue(cli, os));
    EXPECT_NE(os.str().find("shard 0/2"), std::string::npos);
    EXPECT_NE(os.str().find("journal_merge"), std::string::npos);
  }
  const char* plain_argv[] = {"prog"};
  const SweepCli plain = sweep_cli_from_args(ArgParser(1, plain_argv),
                                             "bench v1");
  std::ostringstream os;
  EXPECT_FALSE(shard_epilogue(plain, os));
  EXPECT_TRUE(os.str().empty());
  std::remove(path.c_str());
  std::remove((path + ".lock").c_str());
}

}  // namespace
}  // namespace ppg
