// SweepJournal: the PPGJRNL checkpoint file must round-trip encoded cells,
// recover from a tail torn at ANY byte, refuse foreign files and binding
// mismatches, and make sweep_cells resume without recomputation — with
// output identical across --jobs values and interruptions.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_support/parallel_sweep.hpp"
#include "util/error.hpp"
#include "util/interrupt.hpp"

namespace ppg {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

void spill(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class SweepJournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "ppg_journal_test.ppgjrnl";
    clear_interrupt();
  }
  void TearDown() override {
    clear_interrupt();
    std::remove(path_.c_str());
    std::remove((path_ + ".lock").c_str());
  }
  std::string path_;
};

TEST_F(SweepJournalTest, RoundTripAcrossStagesAndIndices) {
  {
    auto j = SweepJournal::create(path_, "bench v1");
    j->append(0, 2, "cell-0-2");
    j->append(1, 0, "cell-1-0");
    j->append(0, 0, std::string("\x00\xff|binary", 9));
    EXPECT_EQ(j->num_records(), 3u);
  }
  auto j = SweepJournal::open_resume(path_, "bench v1");
  EXPECT_EQ(j->num_records(), 3u);
  EXPECT_EQ(j->recovered_tail_bytes(), 0u);
  ASSERT_NE(j->find(0, 2), nullptr);
  EXPECT_EQ(*j->find(0, 2), "cell-0-2");
  ASSERT_NE(j->find(1, 0), nullptr);
  EXPECT_EQ(*j->find(1, 0), "cell-1-0");
  ASSERT_NE(j->find(0, 0), nullptr);
  EXPECT_EQ(*j->find(0, 0), std::string("\x00\xff|binary", 9));
  EXPECT_EQ(j->find(2, 0), nullptr);
  EXPECT_EQ(j->find(0, 1), nullptr);
}

TEST_F(SweepJournalTest, TornTailAtEveryByteRecovers) {
  {
    auto j = SweepJournal::create(path_, "bench v1");
    j->append(0, 0, "first-record");
    j->append(0, 1, "second-record");
  }
  const std::string whole = slurp(path_);
  // Find where record 2 begins: the journal with only record 1.
  std::remove(path_.c_str());
  std::size_t first_end;
  {
    auto j = SweepJournal::create(path_, "bench v1");
    j->append(0, 0, "first-record");
  }
  first_end = slurp(path_).size();

  for (std::size_t cut = first_end; cut < whole.size(); ++cut) {
    spill(path_, whole.substr(0, cut));
    auto j = SweepJournal::open_resume(path_, "bench v1");
    ASSERT_NE(j->find(0, 0), nullptr) << "lost record 1 at cut " << cut;
    EXPECT_EQ(*j->find(0, 0), "first-record");
    EXPECT_EQ(j->find(0, 1), nullptr) << "kept a torn record at cut " << cut;
    EXPECT_EQ(j->recovered_tail_bytes(), cut - first_end);
    // The torn tail is truncated in place; appending must produce a
    // journal every future resume reads cleanly.
    j->append(0, 1, "second-record");
    j.reset();
    auto again = SweepJournal::open_resume(path_, "bench v1");
    EXPECT_EQ(again->num_records(), 2u);
    ASSERT_NE(again->find(0, 1), nullptr);
    EXPECT_EQ(*again->find(0, 1), "second-record");
  }
}

TEST_F(SweepJournalTest, CorruptChecksumDropsTailRecord) {
  {
    auto j = SweepJournal::create(path_, "bench v1");
    j->append(0, 0, "first-record");
    j->append(0, 1, "second-record");
  }
  std::string bytes = slurp(path_);
  bytes.back() ^= '\x01';  // flip a checksum bit of the final record
  spill(path_, bytes);
  auto j = SweepJournal::open_resume(path_, "bench v1");
  EXPECT_EQ(j->num_records(), 1u);
  EXPECT_NE(j->find(0, 0), nullptr);
  EXPECT_EQ(j->find(0, 1), nullptr);
  EXPECT_GT(j->recovered_tail_bytes(), 0u);
}

TEST_F(SweepJournalTest, ForeignFileIsRefused) {
  spill(path_, "PNG\x89 this is some other format entirely");
  try {
    SweepJournal::open_resume(path_, "bench v1");
    FAIL() << "opened a non-journal file as a journal";
  } catch (const PpgException& e) {
    EXPECT_EQ(e.error().code, ErrorCode::kBadInput);
    EXPECT_FALSE(e.error().path.empty());
  }
}

TEST_F(SweepJournalTest, BindingMismatchIsRefused) {
  { SweepJournal::create(path_, "bench_a v1 p=8")->append(0, 0, "x"); }
  try {
    SweepJournal::open_resume(path_, "bench_a v1 p=16");
    FAIL() << "resumed against a journal with a different binding";
  } catch (const PpgException& e) {
    EXPECT_EQ(e.error().code, ErrorCode::kBadInput);
    EXPECT_NE(e.error().message.find("binding"), std::string::npos);
  }
}

TEST_F(SweepJournalTest, MissingOrTornHeaderBecomesFresh) {
  // No file at all: resume degrades to a fresh journal.
  auto fresh = SweepJournal::open_resume(path_, "bench v1");
  EXPECT_EQ(fresh->num_records(), 0u);
  fresh->append(0, 0, "works");
  fresh.reset();
  // A header torn mid-magic (crash during creation): also fresh.
  spill(path_, "PPGJ");
  auto recreated = SweepJournal::open_resume(path_, "bench v1");
  EXPECT_EQ(recreated->num_records(), 0u);
  recreated->append(0, 0, "works again");
  recreated.reset();
  auto reread = SweepJournal::open_resume(path_, "bench v1");
  ASSERT_NE(reread->find(0, 0), nullptr);
  EXPECT_EQ(*reread->find(0, 0), "works again");
}

// --- sweep_cells integration ----------------------------------------------

std::vector<std::uint64_t> run_sweep(const SweepOptions& opts,
                                     std::atomic<std::size_t>* computed) {
  return sweep_cells(
      opts, 16,
      [&](std::size_t i) {
        if (computed != nullptr) computed->fetch_add(1);
        return cell_seed(99, i);  // deterministic, index-dependent
      },
      [](CellWriter& w, const std::uint64_t& v) { w.u64(v); },
      [](CellReader& r) { return r.u64(); });
}

TEST_F(SweepJournalTest, ResumeSkipsRecomputation) {
  std::atomic<std::size_t> computed{0};
  SweepOptions opts;
  opts.jobs = 2;
  auto j = SweepJournal::create(path_, "sweep v1");
  opts.journal = j.get();
  const auto first = run_sweep(opts, &computed);
  EXPECT_EQ(computed.load(), 16u);
  j.reset();

  computed = 0;
  auto resumed = SweepJournal::open_resume(path_, "sweep v1");
  opts.journal = resumed.get();
  const auto second = run_sweep(opts, &computed);
  EXPECT_EQ(computed.load(), 0u) << "resume recomputed journaled cells";
  EXPECT_EQ(first, second);
}

TEST_F(SweepJournalTest, JournaledResultsIdenticalAcrossJobs) {
  SweepOptions serial;
  const auto want = run_sweep(serial, nullptr);
  for (const std::size_t jobs : {std::size_t{2}, std::size_t{4}}) {
    std::remove(path_.c_str());
    SweepOptions opts;
    opts.jobs = jobs;
    auto j = SweepJournal::create(path_, "sweep v1");
    opts.journal = j.get();
    EXPECT_EQ(run_sweep(opts, nullptr), want) << "jobs=" << jobs;
    // And decoding the journal back must reproduce the same results.
    j.reset();
    auto reopened = SweepJournal::open_resume(path_, "sweep v1");
    opts.journal = reopened.get();
    EXPECT_EQ(run_sweep(opts, nullptr), want) << "resume, jobs=" << jobs;
  }
}

TEST_F(SweepJournalTest, InterruptPreservesCompletedCells) {
  SweepOptions opts;
  opts.jobs = 1;  // deterministic claim order for the cutoff below
  auto j = SweepJournal::create(path_, "sweep v1");
  opts.journal = j.get();
  try {
    sweep_cells(
        opts, 16,
        [&](std::size_t i) {
          if (i == 5) request_interrupt();  // arrives "mid-sweep"
          return cell_seed(99, i);
        },
        [](CellWriter& w, const std::uint64_t& v) { w.u64(v); },
        [](CellReader& r) { return r.u64(); });
    FAIL() << "interrupted sweep did not throw";
  } catch (const PpgException& e) {
    EXPECT_EQ(e.error().code, ErrorCode::kInterrupted);
    EXPECT_NE(e.error().message.find("--resume"), std::string::npos);
  }
  // Cells 0..5 finished (the in-flight cell drains) and are on disk.
  EXPECT_EQ(j->num_records(), 6u);
  j.reset();
  clear_interrupt();

  // Resume completes the remaining 10 cells and matches a clean run.
  std::atomic<std::size_t> computed{0};
  auto resumed = SweepJournal::open_resume(path_, "sweep v1");
  opts.journal = resumed.get();
  const auto got = run_sweep(opts, &computed);
  EXPECT_EQ(computed.load(), 10u);
  SweepOptions plain;
  EXPECT_EQ(got, run_sweep(plain, nullptr));
}

TEST_F(SweepJournalTest, BareResumeFlagWithoutJournalIsRejected) {
  const char* argv[] = {"bench", "--resume"};
  const ArgParser args(2, argv);
  try {
    journal_from_args(args, "bench v1");
    FAIL() << "accepted --resume without --journal";
  } catch (const PpgException& e) {
    EXPECT_EQ(e.error().code, ErrorCode::kBadInput);
  }
}

TEST_F(SweepJournalTest, DuplicateRecordIsRejectedAsCorruption) {
  // Two records for one (stage, index) can only mean two writers raced
  // the journal; neither copy can be trusted, so resume must refuse —
  // not silently keep the last (or first) one.
  std::size_t header_size;
  {
    SweepJournal::create(path_, "bench v1");
    header_size = slurp(path_).size();
  }
  { SweepJournal::create(path_, "bench v1")->append(0, 0, "copy-a"); }
  const std::string bytes = slurp(path_);
  spill(path_, bytes + bytes.substr(header_size));  // the racer's copy
  try {
    SweepJournal::open_resume(path_, "bench v1");
    FAIL() << "resumed a journal with duplicate (stage, index) records";
  } catch (const PpgException& e) {
    EXPECT_EQ(e.error().code, ErrorCode::kBadInput);
    EXPECT_NE(e.error().message.find("duplicate"), std::string::npos);
  }
  EXPECT_THROW(SweepJournal::load(path_), PpgException);
}

TEST_F(SweepJournalTest, StrictLoadRefusesRepairs) {
  // load() is the validation entry (journal_merge): a torn tail that
  // open_resume would silently truncate is a structured error here,
  // because a torn shard journal means its worker must be resumed first.
  {
    auto j = SweepJournal::create(path_, "bench v1");
    j->append(0, 0, "first-record");
    j->append(0, 1, "second-record");
  }
  const std::string whole = slurp(path_);
  spill(path_, whole.substr(0, whole.size() - 3));
  try {
    SweepJournal::load(path_);
    FAIL() << "strict load repaired a torn tail";
  } catch (const PpgException& e) {
    EXPECT_EQ(e.error().code, ErrorCode::kBadInput);
  }
  // A missing file is an error too (open_resume would create it fresh).
  std::remove(path_.c_str());
  EXPECT_THROW(SweepJournal::load(path_), PpgException);
}

// --- journal leases -------------------------------------------------------

TEST_F(SweepJournalTest, JournalLeaseRefusesLiveSecondWriter) {
  const LeaseOptions hold{/*acquire=*/true, /*steal=*/false};
  auto first = SweepJournal::create(path_, "bench v1", hold);
  for (const bool steal : {false, true}) {
    try {
      SweepJournal::open_resume(path_, "bench v1",
                                LeaseOptions{/*acquire=*/true, steal});
      FAIL() << "second writer acquired a held lease (steal=" << steal << ")";
    } catch (const PpgException& e) {
      // This process is alive, so even --steal-lease must refuse.
      EXPECT_EQ(e.error().code, ErrorCode::kJournalLocked);
    }
  }
  // Lease-free opens (read paths, in-process tests) are not blocked.
  first.reset();
  EXPECT_NE(SweepJournal::open_resume(path_, "bench v1"), nullptr);
}

TEST_F(SweepJournalTest, JournalLeaseReleasedOnDestruction) {
  const LeaseOptions hold{/*acquire=*/true, /*steal=*/false};
  const std::string lock_path = path_ + ".lock";
  {
    auto j = SweepJournal::create(path_, "bench v1", hold);
    EXPECT_TRUE(JournalLease::read(lock_path).has_value());
  }
  EXPECT_FALSE(JournalLease::read(lock_path).has_value());
  // The next writer acquires cleanly.
  SweepJournal::open_resume(path_, "bench v1", hold);
}

TEST_F(SweepJournalTest, JournalLeaseDeadOwnerYieldsOnlyToSteal) {
  { SweepJournal::create(path_, "bench v1")->append(0, 0, "x"); }
  // A lease left by a crashed worker: a pid beyond pid_max is never alive.
  spill(path_ + ".lock",
        "PPGLOCK v1\npid 999999999\nheartbeat 7\nbinding bench v1\n");
  try {
    SweepJournal::open_resume(path_, "bench v1",
                              LeaseOptions{/*acquire=*/true, /*steal=*/false});
    FAIL() << "acquired a dead owner's lease without --steal-lease";
  } catch (const PpgException& e) {
    EXPECT_EQ(e.error().code, ErrorCode::kJournalLocked);
    EXPECT_NE(e.error().message.find("steal-lease"), std::string::npos);
  }
  auto stolen = SweepJournal::open_resume(
      path_, "bench v1", LeaseOptions{/*acquire=*/true, /*steal=*/true});
  ASSERT_NE(stolen, nullptr);
  EXPECT_NE(stolen->find(0, 0), nullptr);
  const auto info = JournalLease::read(path_ + ".lock");
  ASSERT_TRUE(info.has_value());
  EXPECT_NE(info->pid, 999999999LL);  // rewritten to the new owner
  stolen.reset();
  std::remove((path_ + ".lock").c_str());
}

TEST_F(SweepJournalTest, JournalLeaseHeartbeatAdvancesOnAppend) {
  const LeaseOptions hold{/*acquire=*/true, /*steal=*/false};
  auto j = SweepJournal::create(path_, "bench v1", hold);
  const auto before = JournalLease::read(path_ + ".lock");
  ASSERT_TRUE(before.has_value());
  j->append(0, 0, "a");
  j->append(0, 1, "b");
  const auto after = JournalLease::read(path_ + ".lock");
  ASSERT_TRUE(after.has_value());
  EXPECT_GT(after->heartbeat, before->heartbeat)
      << "a supervisor cannot tell a working owner from a hung one";
}

}  // namespace
}  // namespace ppg
