#include <gtest/gtest.h>

#include <sstream>

#include "test_helpers.hpp"
#include "trace/generators.hpp"
#include "trace/trace_io.hpp"
#include "util/rng.hpp"

namespace ppg {
namespace {

TEST(TraceIo, RoundtripEmpty) {
  MultiTrace mt;
  std::stringstream ss;
  write_multitrace(ss, mt);
  const MultiTrace back = read_multitrace(ss);
  EXPECT_EQ(back.num_procs(), 0u);
}

TEST(TraceIo, RoundtripPreservesContent) {
  Rng rng(1);
  MultiTrace mt;
  mt.add(gen::uniform_random(50, 1000, rng));
  mt.add(test::make_trace({1, 2, 3}));
  mt.add(Trace{});  // empty trace in the middle of the bundle

  std::stringstream ss;
  write_multitrace(ss, mt);
  const MultiTrace back = read_multitrace(ss);

  ASSERT_EQ(back.num_procs(), 3u);
  for (ProcId i = 0; i < 3; ++i)
    EXPECT_EQ(back.trace(i).requests(), mt.trace(i).requests());
}

TEST(TraceIo, RejectsBadMagic) {
  std::stringstream ss;
  ss << "NOTATRACEFILE----------";
  EXPECT_THROW(read_multitrace(ss), std::runtime_error);
}

TEST(TraceIo, RejectsTruncatedStream) {
  MultiTrace mt;
  mt.add(test::make_trace({1, 2, 3, 4, 5}));
  std::stringstream ss;
  write_multitrace(ss, mt);
  std::string data = ss.str();
  data.resize(data.size() / 2);
  std::stringstream truncated(data);
  EXPECT_THROW(read_multitrace(truncated), std::runtime_error);
}

TEST(TraceIo, FileRoundtrip) {
  MultiTrace mt;
  mt.add(test::make_trace({7, 8, 9}));
  const std::string path = ::testing::TempDir() + "/ppg_trace_test.bin";
  save_multitrace(path, mt);
  const MultiTrace back = load_multitrace(path);
  ASSERT_EQ(back.num_procs(), 1u);
  EXPECT_EQ(back.trace(0).requests(), mt.trace(0).requests());
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(load_multitrace("/nonexistent/dir/file.bin"),
               std::runtime_error);
}

TEST(TraceIoText, RoundtripPreservesContent) {
  Rng rng(9);
  MultiTrace mt;
  mt.add(gen::uniform_random(20, 500, rng));
  mt.add(test::make_trace({7, 7, 9}));
  std::stringstream ss;
  write_multitrace_text(ss, mt);
  const MultiTrace back = read_multitrace_text(ss);
  ASSERT_EQ(back.num_procs(), 2u);
  for (ProcId i = 0; i < 2; ++i)
    EXPECT_EQ(back.trace(i).requests(), mt.trace(i).requests());
}

TEST(TraceIoText, ParsesCommentsAndInterleaving) {
  std::stringstream ss;
  ss << "# header comment\n"
     << "1 100\n"
     << "0 5  # trailing comment\n"
     << "\n"
     << "1 101\n"
     << "0 6\n";
  const MultiTrace mt = read_multitrace_text(ss);
  ASSERT_EQ(mt.num_procs(), 2u);
  EXPECT_EQ(mt.trace(0).requests(), (std::vector<PageId>{5, 6}));
  EXPECT_EQ(mt.trace(1).requests(), (std::vector<PageId>{100, 101}));
}

TEST(TraceIoText, GapProcessorsYieldEmptyTraces) {
  std::stringstream ss;
  ss << "2 42\n";
  const MultiTrace mt = read_multitrace_text(ss);
  ASSERT_EQ(mt.num_procs(), 3u);
  EXPECT_TRUE(mt.trace(0).empty());
  EXPECT_TRUE(mt.trace(1).empty());
  EXPECT_EQ(mt.trace(2).requests(), (std::vector<PageId>{42}));
}

TEST(TraceIoText, RejectsMalformedLines) {
  for (const char* bad : {"x y\n", "1\n", "1 2 3\n"}) {
    std::stringstream ss;
    ss << bad;
    EXPECT_THROW(read_multitrace_text(ss), std::runtime_error) << bad;
  }
}

TEST(TraceIoText, FileRoundtrip) {
  MultiTrace mt;
  mt.add(test::make_trace({1, 2, 3}));
  const std::string path = ::testing::TempDir() + "/ppg_trace_test.txt";
  save_multitrace_text(path, mt);
  const MultiTrace back = load_multitrace_text(path);
  ASSERT_EQ(back.num_procs(), 1u);
  EXPECT_EQ(back.trace(0).requests(), mt.trace(0).requests());
}

}  // namespace
}  // namespace ppg
