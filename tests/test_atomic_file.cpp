// util/atomic_file: whole-file atomic replacement and durable appends —
// the two write primitives everything crash-safe builds on.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "util/atomic_file.hpp"
#include "util/error.hpp"

namespace ppg {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

class AtomicFile : public ::testing::Test {
 protected:
  void SetUp() override { path_ = testing::TempDir() + "ppg_atomic_test.bin"; }
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  std::string path_;
};

TEST_F(AtomicFile, WriteCreatesAndReplaces) {
  atomic_write_file(path_, "first contents");
  EXPECT_EQ(slurp(path_), "first contents");
  atomic_write_file(path_, "second, shorter");
  EXPECT_EQ(slurp(path_), "second, shorter");
}

TEST_F(AtomicFile, WriteHandlesBinaryAndEmptyPayloads) {
  const std::string binary("\x00\xff\x7f\n\r\x01", 6);
  atomic_write_file(path_, binary);
  EXPECT_EQ(slurp(path_), binary);
  atomic_write_file(path_, "");
  EXPECT_EQ(slurp(path_), "");
}

TEST_F(AtomicFile, WriteLeavesNoTempBehind) {
  atomic_write_file(path_, "payload");
  std::ifstream tmp(path_ + ".tmp");
  EXPECT_FALSE(tmp.good());
}

TEST_F(AtomicFile, WriteToMissingDirectoryIsStructured) {
  const std::string bad = testing::TempDir() + "ppg_no_such_dir/x.bin";
  try {
    atomic_write_file(bad, "payload");
    FAIL() << "wrote into a nonexistent directory";
  } catch (const PpgException& e) {
    EXPECT_EQ(e.error().code, ErrorCode::kIoError);
    EXPECT_FALSE(e.error().path.empty());
  }
}

TEST_F(AtomicFile, DurableAppendAccumulates) {
  {
    DurableAppendFile f = DurableAppendFile::open(path_, /*truncate=*/true);
    f.append("alpha");
    f.append("-beta");
  }
  EXPECT_EQ(slurp(path_), "alpha-beta");
  {
    // Reopen without truncation: appends continue at the end.
    DurableAppendFile f = DurableAppendFile::open(path_, /*truncate=*/false);
    f.append("-gamma");
  }
  EXPECT_EQ(slurp(path_), "alpha-beta-gamma");
}

TEST_F(AtomicFile, TruncateToDropsTail) {
  DurableAppendFile f = DurableAppendFile::open(path_, /*truncate=*/true);
  f.append("keep|torn");
  f.truncate_to(5);
  f.append("next");
  f.close();
  EXPECT_EQ(slurp(path_), "keep|next");
}

TEST_F(AtomicFile, MoveTransfersOwnership) {
  DurableAppendFile a = DurableAppendFile::open(path_, /*truncate=*/true);
  a.append("one");
  DurableAppendFile b = std::move(a);
  EXPECT_FALSE(a.is_open());  // NOLINT(bugprone-use-after-move): asserted
  ASSERT_TRUE(b.is_open());
  b.append("-two");
  b.close();
  EXPECT_EQ(slurp(path_), "one-two");
}

TEST_F(AtomicFile, OpenInMissingDirectoryIsStructured) {
  try {
    DurableAppendFile::open(testing::TempDir() + "ppg_no_such_dir/j.jrnl",
                            /*truncate=*/true);
    FAIL() << "opened a file in a nonexistent directory";
  } catch (const PpgException& e) {
    EXPECT_EQ(e.error().code, ErrorCode::kIoError);
  }
}

}  // namespace
}  // namespace ppg
