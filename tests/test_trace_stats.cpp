#include <gtest/gtest.h>

#include "paging/cache_sim.hpp"
#include "trace/generators.hpp"
#include "trace/trace_stats.hpp"
#include "util/rng.hpp"

namespace ppg {
namespace {

TEST(TraceStats, CyclicBasics) {
  const Trace t = gen::cyclic(8, 80);
  const TraceStats s = compute_trace_stats(t, 8);
  EXPECT_EQ(s.num_requests, 80u);
  EXPECT_EQ(s.distinct_pages, 8u);
  EXPECT_DOUBLE_EQ(s.reuse_fraction, 0.9);
  EXPECT_EQ(s.median_stack_distance, 7u);
  EXPECT_DOUBLE_EQ(s.cold_miss_fraction, 0.1);
}

TEST(TraceStats, SingleUseHasNoReuse) {
  const Trace t = gen::single_use(50);
  const TraceStats s = compute_trace_stats(t, 4);
  EXPECT_DOUBLE_EQ(s.reuse_fraction, 0.0);
  EXPECT_DOUBLE_EQ(s.cold_miss_fraction, 1.0);
}

TEST(TraceStats, FaultCurveMatchesLruSimulation) {
  Rng rng(3);
  const Trace t = gen::zipf(32, 2000, 0.9, rng);
  const TraceStats s = compute_trace_stats(t, 6);
  for (std::uint32_t lg = 0; lg <= 6; ++lg) {
    const Height c = Height{1} << lg;
    const CacheSimResult sim = simulate_policy(PolicyKind::kLru, t, c, 2);
    EXPECT_EQ(s.lru_fault_curve[lg], sim.misses) << "capacity " << c;
  }
}

TEST(TraceStats, FaultCurveIsMonotone) {
  Rng rng(4);
  const Trace t = gen::uniform_random(64, 3000, rng);
  const TraceStats s = compute_trace_stats(t, 8);
  for (std::size_t i = 1; i < s.lru_fault_curve.size(); ++i)
    EXPECT_LE(s.lru_fault_curve[i], s.lru_fault_curve[i - 1]);
}

TEST(WorkingSetProfile, WindowsCountDistinct) {
  const Trace t = gen::cyclic(4, 20);
  const auto profile = working_set_profile(t, 10);
  ASSERT_EQ(profile.size(), 2u);
  EXPECT_EQ(profile[0], 4u);
  EXPECT_EQ(profile[1], 4u);
}

TEST(WorkingSetProfile, PartialTailWindow) {
  const Trace t = gen::single_use(25);
  const auto profile = working_set_profile(t, 10);
  ASSERT_EQ(profile.size(), 3u);
  EXPECT_EQ(profile[0], 10u);
  EXPECT_EQ(profile[2], 5u);
}

TEST(TraceStats, FormatMentionsKeyFields) {
  const TraceStats s = compute_trace_stats(gen::cyclic(4, 40), 4);
  const std::string text = format_trace_stats(s);
  EXPECT_NE(text.find("requests=40"), std::string::npos);
  EXPECT_NE(text.find("distinct=4"), std::string::npos);
}

}  // namespace
}  // namespace ppg
