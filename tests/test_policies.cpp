#include <gtest/gtest.h>

#include <tuple>

#include "paging/cache_sim.hpp"
#include "paging/eviction_policy.hpp"
#include "test_helpers.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"

namespace ppg {
namespace {

TEST(LruPolicyTest, ClassicSequence) {
  // Capacity 3, trace 1 2 3 4 1 2 5 1 2 3 4 5 — the textbook example:
  // LRU faults 10 times.
  const Trace t = test::make_trace({1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5});
  const CacheSimResult r = simulate_policy(PolicyKind::kLru, t, 3, 2);
  EXPECT_EQ(r.misses, 10u);
  EXPECT_EQ(r.hits, 2u);
}

TEST(FifoPolicyTest, BeladyAnomalyWitness) {
  // The classic Belady-anomaly trace: FIFO with capacity 3 faults 9 times,
  // with capacity 4 faults 10 times.
  const Trace t = test::make_trace({1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5});
  EXPECT_EQ(simulate_policy(PolicyKind::kFifo, t, 3, 2).misses, 9u);
  EXPECT_EQ(simulate_policy(PolicyKind::kFifo, t, 4, 2).misses, 10u);
}

TEST(BeladyPolicyTest, OptimalOnTextbookTrace) {
  // OPT on the same trace with capacity 3 faults 7 times.
  const Trace t = test::make_trace({1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5});
  EXPECT_EQ(simulate_policy(PolicyKind::kBelady, t, 3, 2).misses, 7u);
}

TEST(BeladyPolicyTest, NoFaultsWhenEverythingFits) {
  const Trace t = gen::cyclic(4, 40);
  const CacheSimResult r = simulate_policy(PolicyKind::kBelady, t, 4, 2);
  EXPECT_EQ(r.misses, 4u);  // cold only
}

TEST(ClockPolicyTest, ApproximatesLruOnSimpleTrace) {
  // With no re-references, CLOCK behaves exactly like FIFO.
  const Trace t = test::make_trace({1, 2, 3, 4, 5, 6});
  EXPECT_EQ(simulate_policy(PolicyKind::kClock, t, 3, 2).misses, 6u);
}

TEST(ClockPolicyTest, SecondChanceSavesReferencedPage) {
  // Capacity 2: access 1, 2, touch 1, then insert 3. CLOCK should give 1 a
  // second chance and evict 2.
  const Trace t = test::make_trace({1, 2, 1, 3, 1});
  const CacheSimResult r = simulate_policy(PolicyKind::kClock, t, 2, 2);
  // 1,2 miss; 1 hits (sets ref); 3 misses evicting 2; final 1 hits.
  EXPECT_EQ(r.hits, 2u);
  EXPECT_EQ(r.misses, 3u);
}

TEST(LfuPolicyTest, EvictsLeastFrequent) {
  // 1 used three times, 2 once; inserting 3 must evict 2.
  const Trace t = test::make_trace({1, 1, 1, 2, 3, 1});
  const CacheSimResult r = simulate_policy(PolicyKind::kLfu, t, 2, 2);
  // misses: 1, 2, 3; hits: 1 (x2), final 1.
  EXPECT_EQ(r.misses, 3u);
  EXPECT_EQ(r.hits, 3u);
}

TEST(RandomPolicyTest, IsDeterministicGivenSeed) {
  Rng rng(5);
  const Trace t = gen::uniform_random(30, 3000, rng);
  const CacheSimResult a = simulate_policy(PolicyKind::kRandom, t, 8, 2, 77);
  const CacheSimResult b = simulate_policy(PolicyKind::kRandom, t, 8, 2, 77);
  EXPECT_EQ(a.misses, b.misses);
}

TEST(PolicyFactory, NamesMatchKinds) {
  for (const PolicyKind kind :
       {PolicyKind::kLru, PolicyKind::kFifo, PolicyKind::kClock,
        PolicyKind::kRandom, PolicyKind::kLfu, PolicyKind::kBelady}) {
    const auto policy = make_policy(kind, 4);
    EXPECT_STREQ(policy->name(), policy_kind_name(kind));
  }
}

// Property: Belady never faults more than any online policy, on any trace.
using PolicyAndSeed = std::tuple<PolicyKind, std::uint64_t>;
class BeladyDominance : public ::testing::TestWithParam<PolicyAndSeed> {};

TEST_P(BeladyDominance, BeladyIsOptimal) {
  const auto [kind, seed] = GetParam();
  Rng rng(seed);
  const Trace t = gen::zipf(40, 3000, 0.8, rng);
  for (const Height capacity : {2u, 5u, 16u}) {
    const auto belady =
        simulate_policy(PolicyKind::kBelady, t, capacity, 2);
    const auto other = simulate_policy(kind, t, capacity, 2, seed);
    EXPECT_LE(belady.misses, other.misses)
        << policy_kind_name(kind) << " capacity " << capacity;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOnlinePolicies, BeladyDominance,
    ::testing::Combine(::testing::Values(PolicyKind::kLru, PolicyKind::kFifo,
                                         PolicyKind::kClock,
                                         PolicyKind::kRandom,
                                         PolicyKind::kLfu),
                       ::testing::Values(1, 2, 3)));

// Property: LRU has the stack (inclusion) property — more capacity never
// causes more faults.
class LruInclusion : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LruInclusion, FaultsMonotoneInCapacity) {
  Rng rng(GetParam());
  const Trace t = gen::uniform_random(64, 4000, rng);
  std::uint64_t prev = UINT64_MAX;
  for (Height c = 1; c <= 128; c *= 2) {
    const auto r = simulate_policy(PolicyKind::kLru, t, c, 2);
    EXPECT_LE(r.misses, prev) << "capacity " << c;
    prev = r.misses;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LruInclusion, ::testing::Values(11, 22, 33));

// Property: every policy serves every request exactly once.
class PolicyConservation : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(PolicyConservation, HitsPlusMissesEqualsRequests) {
  Rng rng(4);
  const Trace t = gen::sawtooth(4, 32, 200, 6, rng);
  const auto r = simulate_policy(GetParam(), t, 10, 3);
  EXPECT_EQ(r.hits + r.misses, t.size());
  EXPECT_EQ(r.time, r.hits + 3 * r.misses);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyConservation,
                         ::testing::Values(PolicyKind::kLru, PolicyKind::kFifo,
                                           PolicyKind::kClock,
                                           PolicyKind::kRandom,
                                           PolicyKind::kLfu,
                                           PolicyKind::kBelady));

}  // namespace
}  // namespace ppg
