#include <gtest/gtest.h>

#include <unordered_set>

#include "trace/generators.hpp"
#include "trace/page_interner.hpp"
#include "util/rng.hpp"

namespace ppg {
namespace {

TEST(PageInterner, EmptyTrace) {
  const InternedTrace it{Trace{}};
  EXPECT_TRUE(it.empty());
  EXPECT_EQ(it.size(), 0u);
  EXPECT_EQ(it.num_distinct(), 0u);
}

TEST(PageInterner, FirstAppearanceOrder) {
  const Trace trace(std::vector<PageId>{500, 7, 500, 123456789, 7});
  const InternedTrace it(trace);
  EXPECT_EQ(it.size(), 5u);
  EXPECT_EQ(it.num_distinct(), 3u);
  // Dense ids are assigned in first-appearance order.
  EXPECT_EQ(it[0], 0u);  // 500
  EXPECT_EQ(it[1], 1u);  // 7
  EXPECT_EQ(it[2], 0u);  // 500 again
  EXPECT_EQ(it[3], 2u);  // 123456789
  EXPECT_EQ(it[4], 1u);  // 7 again
  EXPECT_EQ(it.page(0), 500u);
  EXPECT_EQ(it.page(1), 7u);
  EXPECT_EQ(it.page(2), 123456789u);
}

TEST(PageInterner, RoundTripsEveryRequest) {
  Rng rng(99);
  const Trace trace = gen::zipf(200, 5000, 1.0, rng);
  const InternedTrace it(trace);
  ASSERT_EQ(it.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    ASSERT_LT(it[i], it.num_distinct());
    ASSERT_EQ(it.page(it[i]), trace[i]) << "request " << i;
  }
}

TEST(PageInterner, DistinctCountMatchesSet) {
  Rng rng(7);
  const Trace trace = gen::zipf(64, 2000, 0.8, rng);
  std::unordered_set<PageId> distinct(trace.begin(), trace.end());
  const InternedTrace it(trace);
  EXPECT_EQ(it.num_distinct(), distinct.size());
  // The dense id table has no duplicates.
  std::unordered_set<PageId> table(it.pages().begin(), it.pages().end());
  EXPECT_EQ(table.size(), it.pages().size());
}

}  // namespace
}  // namespace ppg
