#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "trace/trace.hpp"

namespace ppg {
namespace {

TEST(TraceTest, BasicAccessors) {
  const Trace t = test::make_trace({1, 2, 1, 3});
  EXPECT_EQ(t.size(), 4u);
  EXPECT_FALSE(t.empty());
  EXPECT_EQ(t[0], 1u);
  EXPECT_EQ(t[3], 3u);
  EXPECT_EQ(t.distinct_pages(), 3u);
}

TEST(TraceTest, AppendConcatenates) {
  Trace a = test::make_trace({1, 2});
  const Trace b = test::make_trace({3});
  a.append(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a[2], 3u);
}

TEST(TraceTest, EmptyTrace) {
  const Trace t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.distinct_pages(), 0u);
}

TEST(MakePageTest, EncodesOwner) {
  const PageId p = make_page(5, 123);
  EXPECT_EQ(page_owner(p), 5u);
  EXPECT_EQ(p & ((PageId{1} << 48) - 1), 123u);
}

TEST(MakePageTest, DistinctProcsDistinctPages) {
  EXPECT_NE(make_page(0, 7), make_page(1, 7));
  EXPECT_NE(make_page(2, 0), make_page(3, 0));
}

TEST(MultiTraceTest, TotalsAndMax) {
  MultiTrace mt;
  mt.add(test::make_trace({1, 2, 3}));
  mt.add(test::make_trace({4}));
  EXPECT_EQ(mt.num_procs(), 2u);
  EXPECT_EQ(mt.total_requests(), 4u);
  EXPECT_EQ(mt.max_length(), 3u);
}

TEST(MultiTraceTest, DisjointValidation) {
  MultiTrace good;
  good.add(test::make_trace({1, 2}));
  good.add(test::make_trace({3, 4}));
  EXPECT_TRUE(good.validate_disjoint());

  MultiTrace bad;
  bad.add(test::make_trace({1, 2}));
  bad.add(test::make_trace({2, 3}));  // shares page 2
  EXPECT_FALSE(bad.validate_disjoint());
}

TEST(MultiTraceTest, SameProcRepeatsAreFine) {
  MultiTrace mt;
  mt.add(test::make_trace({1, 1, 1}));
  EXPECT_TRUE(mt.validate_disjoint());
}

}  // namespace
}  // namespace ppg
