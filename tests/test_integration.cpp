// End-to-end integration: every scheduler x every workload kind at small
// scale, checking the cross-cutting invariants that individual unit tests
// cannot see together.
#include <gtest/gtest.h>

#include <tuple>

#include "core/global_lru.hpp"
#include "core/parallel_engine.hpp"
#include "core/scheduler_factory.hpp"
#include "opt/opt_bounds.hpp"
#include "trace/workload.hpp"

namespace ppg {
namespace {

using Combo = std::tuple<SchedulerKind, WorkloadKind>;

class SchedulerWorkloadMatrix : public ::testing::TestWithParam<Combo> {};

TEST_P(SchedulerWorkloadMatrix, InvariantsHold) {
  const auto [skind, wkind] = GetParam();
  WorkloadParams wp;
  wp.num_procs = 8;
  wp.cache_size = 32;
  wp.requests_per_proc = 800;
  wp.seed = 17;
  const MultiTrace mt = make_workload(wkind, wp);

  EngineConfig ec;
  ec.cache_size = 32;
  ec.miss_cost = 4;
  auto scheduler = make_scheduler(skind, 23);
  const ParallelRunResult r = run_parallel(mt, *scheduler, ec);

  // Conservation: every request served exactly once.
  EXPECT_EQ(r.hits + r.misses, mt.total_requests());
  // Completion structure.
  ASSERT_EQ(r.completion.size(), mt.num_procs());
  Time max_c = 0;
  for (ProcId i = 0; i < mt.num_procs(); ++i) {
    EXPECT_GE(r.completion[i], mt.trace(i).size()) << "proc " << i;
    max_c = std::max(max_c, r.completion[i]);
  }
  EXPECT_EQ(r.makespan, max_c);
  EXPECT_LE(r.mean_completion, static_cast<double>(r.makespan));
  EXPECT_GE(r.mean_completion, 1.0);
  // Constant augmentation (generous common cap across schedulers).
  EXPECT_LE(r.effective_augmentation, 8.0) << scheduler->name();
  // Lower-bound sandwich.
  OptBoundsConfig oc;
  oc.cache_size = 32;
  oc.miss_cost = 4;
  const OptBounds bounds = compute_opt_bounds(mt, oc);
  EXPECT_GE(r.makespan, bounds.lower_bound());
  // Impact accounting is consistent with peak memory and makespan.
  EXPECT_LE(r.total_impact,
            static_cast<Impact>(r.peak_concurrent_height) * r.makespan);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SchedulerWorkloadMatrix,
    ::testing::Combine(::testing::ValuesIn(all_scheduler_kinds()),
                       ::testing::ValuesIn(all_workload_kinds())),
    [](const ::testing::TestParamInfo<Combo>& param_info) {
      std::string name =
          std::string(scheduler_kind_name(std::get<0>(param_info.param))) + "_" +
          workload_kind_name(std::get<1>(param_info.param));
      for (char& ch : name)
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      return name;
    });

TEST(Integration, PaperSchedulersBeatStaticOnSkewedWorkload) {
  // The qualitative claim behind the whole line of work: adaptive
  // schedulers finish skewed multiprogrammed workloads sooner than a
  // static equal split.
  WorkloadParams wp;
  wp.num_procs = 16;
  wp.cache_size = 64;
  wp.requests_per_proc = 3000;
  wp.seed = 29;
  const MultiTrace mt = make_workload(WorkloadKind::kSkewedLengths, wp);

  EngineConfig ec;
  ec.cache_size = 64;
  ec.miss_cost = 8;
  auto static_s = make_scheduler(SchedulerKind::kStatic);
  auto det_par = make_scheduler(SchedulerKind::kDetPar);
  const Time t_static = run_parallel(mt, *static_s, ec).makespan;
  const Time t_det = run_parallel(mt, *det_par, ec).makespan;
  EXPECT_LT(t_det, 2 * t_static);  // sanity: same order of magnitude
}

TEST(Integration, MeanCompletionFavorsShortJobsUnderDetPar) {
  // DET-PAR is balanced: short sequences should not be starved behind long
  // ones — mean completion stays well below makespan on skewed lengths.
  WorkloadParams wp;
  wp.num_procs = 8;
  wp.cache_size = 32;
  wp.requests_per_proc = 4000;
  const MultiTrace mt = make_workload(WorkloadKind::kSkewedLengths, wp);
  EngineConfig ec;
  ec.cache_size = 32;
  ec.miss_cost = 4;
  auto det_par = make_scheduler(SchedulerKind::kDetPar);
  const ParallelRunResult r = run_parallel(mt, *det_par, ec);
  EXPECT_LT(r.mean_completion, 0.9 * static_cast<double>(r.makespan));
}

}  // namespace
}  // namespace ppg
