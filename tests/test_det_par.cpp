#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "core/det_par.hpp"
#include "core/parallel_engine.hpp"
#include "trace/generators.hpp"
#include "trace/workload.hpp"
#include "util/math_util.hpp"

namespace ppg {
namespace {

MultiTrace mixed_workload(ProcId p, Height k, std::size_t len) {
  WorkloadParams params;
  params.num_procs = p;
  params.cache_size = k;
  params.requests_per_proc = len;
  params.seed = 3;
  return make_workload(WorkloadKind::kHeterogeneousMix, params);
}

EngineConfig config_for(Height k, Time s) {
  EngineConfig c;
  c.cache_size = k;
  c.miss_cost = s;
  return c;
}

TEST(DetPar, CompletesAllSequences) {
  const MultiTrace mt = mixed_workload(8, 32, 2000);
  auto scheduler = make_det_par();
  const ParallelRunResult r = run_parallel(mt, *scheduler, config_for(32, 4));
  EXPECT_EQ(r.hits + r.misses, mt.total_requests());
}

TEST(DetPar, FullyDeterministic) {
  const MultiTrace mt = mixed_workload(8, 32, 1500);
  auto s1 = make_det_par();
  auto s2 = make_det_par();
  const ParallelRunResult a = run_parallel(mt, *s1, config_for(32, 4));
  const ParallelRunResult b = run_parallel(mt, *s2, config_for(32, 4));
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.completion, b.completion);
  EXPECT_EQ(a.num_boxes, b.num_boxes);
}

TEST(DetPar, RespectsConstantAugmentation) {
  const MultiTrace mt = mixed_workload(16, 64, 2000);
  auto scheduler = make_det_par();
  const ParallelRunResult r = run_parallel(mt, *scheduler, config_for(64, 4));
  // Base boxes ~2k + strips ~k + tall-box cycling ~2k: well under 8x.
  EXPECT_LE(r.effective_augmentation, 8.0);
}

TEST(DetPar, EveryActiveProcessorAlwaysHasABox) {
  // Well-roundedness property 1: between its first box and its completion,
  // a processor is never without an assignment (no stall gaps).
  const MultiTrace mt = mixed_workload(8, 32, 1000);
  auto scheduler = make_det_par();
  EngineConfig c = config_for(32, 4);
  std::map<ProcId, Time> last_end;
  bool gap_free = true;
  c.on_box = [&](ProcId proc, const BoxAssignment& box) {
    if (auto it = last_end.find(proc); it != last_end.end()) {
      if (box.start > it->second) gap_free = false;
    }
    last_end[proc] = box.end;
  };
  run_parallel(mt, *scheduler, c);
  EXPECT_TRUE(gap_free);
}

// Well-roundedness property 2 (the heart of Lemma 6): for every height z on
// the phase ladder, a processor receives a box of height >= z at least
// every C * z^2 * s * log(p) / b ticks. We verify empirically with a
// generous constant, using equal-length single-use traces so that no
// processor finishes early (phases do not rotate mid-measurement).
TEST(DetPar, WellRoundedGapBound) {
  const ProcId p = 8;
  const Height k = 64;
  const Time s = 4;
  MultiTrace mt;
  for (ProcId i = 0; i < p; ++i)
    mt.add(gen::rebase_to_proc(gen::single_use(30000), i));

  auto scheduler = make_det_par();
  EngineConfig c = config_for(k, s);
  // last_tall[proc][rung] = last time a box of height >= z ended.
  const Height b = static_cast<Height>(pow2_ceil(2 * k / p));  // 16
  const std::uint32_t rungs = ilog2_floor(k / b) + 1;          // 16,32,64
  std::vector<std::vector<Time>> last_seen(p, std::vector<Time>(rungs, 0));
  std::vector<std::vector<Time>> worst_gap(p, std::vector<Time>(rungs, 0));
  c.on_box = [&](ProcId proc, const BoxAssignment& box) {
    for (std::uint32_t rung = 0; rung < rungs; ++rung) {
      const Height z = b << rung;
      if (box.height >= z) {
        const Time gap = box.start - last_seen[proc][rung];
        worst_gap[proc][rung] = std::max(worst_gap[proc][rung], gap);
        last_seen[proc][rung] = box.end;
      }
    }
  };
  const ParallelRunResult r = run_parallel(mt, *scheduler, c);

  const double logp = std::max(1.0, std::log2(static_cast<double>(p)));
  for (ProcId proc = 0; proc < p; ++proc) {
    for (std::uint32_t rung = 0; rung < rungs; ++rung) {
      const double z = static_cast<double>(b << rung);
      const double bound =
          16.0 * z * z * static_cast<double>(s) * logp / b;
      EXPECT_LE(static_cast<double>(worst_gap[proc][rung]), bound)
          << "proc " << proc << " z " << z;
      // The processor must have received the tall box at all (the run is
      // long enough for several periods).
      EXPECT_GT(last_seen[proc][rung], 0u) << "proc " << proc << " z " << z;
    }
  }
  EXPECT_EQ(r.hits + r.misses, mt.total_requests());
}

TEST(DetPar, PhaseBaseHeightGrowsAsProcessorsFinish) {
  // Wildly different lengths: as processors finish, later boxes should be
  // taller on average (base height doubles each phase).
  const Height k = 64;
  MultiTrace mt;
  for (ProcId i = 0; i < 8; ++i) {
    const std::size_t len = 500 << (i % 4 == 0 ? 4 : 0);
    mt.add(gen::rebase_to_proc(gen::single_use(len), i));
  }
  auto scheduler = make_det_par();
  EngineConfig c = config_for(k, 4);
  Height max_filler_seen = 0;
  c.on_box = [&](ProcId, const BoxAssignment& box) {
    max_filler_seen = std::max(max_filler_seen, box.height);
  };
  const ParallelRunResult r = run_parallel(mt, *scheduler, c);
  EXPECT_EQ(r.hits + r.misses, mt.total_requests());
  EXPECT_EQ(max_filler_seen, k);  // last survivor gets full-cache boxes
}

TEST(DetPar, SingleProcessorWithinConstantOfDedicatedLru) {
  MultiTrace mt;
  mt.add(gen::cyclic(30, 2000));
  auto scheduler = make_det_par();
  const ParallelRunResult r = run_parallel(mt, *scheduler, config_for(32, 4));
  // p = 1: every box has the full-cache height 32 >= working set, but each
  // compartment reset re-faults the cycle. The paper's accounting bounds
  // this at a constant factor over dedicated LRU (an OPT-box of work s*z
  // always completes inside one fresh height-z box).
  const Time dedicated_lru = 30 * 4 + (2000 - 30);  // cold misses + hits
  EXPECT_LT(r.makespan, 8 * dedicated_lru);
  EXPECT_GE(r.makespan, dedicated_lru);
}

}  // namespace
}  // namespace ppg
