#include <gtest/gtest.h>

#include "green/box.hpp"

namespace ppg {
namespace {

TEST(BoxTest, ImpactIsHeightTimesDuration) {
  const Box b{4, 10};
  EXPECT_EQ(b.impact(), 40u);
}

TEST(BoxTest, CanonicalBoxDuration) {
  const Box b = canonical_box(8, 5);
  EXPECT_EQ(b.height, 8u);
  EXPECT_EQ(b.duration, 40u);
  EXPECT_EQ(b.impact(), 320u);
}

TEST(HeightLadderTest, NumHeights) {
  const HeightLadder ladder{4, 64};
  EXPECT_TRUE(ladder.valid());
  EXPECT_EQ(ladder.num_heights(), 5u);  // 4 8 16 32 64
  EXPECT_EQ(ladder.height(0), 4u);
  EXPECT_EQ(ladder.height(4), 64u);
}

TEST(HeightLadderTest, SingleRung) {
  const HeightLadder ladder{8, 8};
  EXPECT_TRUE(ladder.valid());
  EXPECT_EQ(ladder.num_heights(), 1u);
}

TEST(HeightLadderTest, InvalidWhenNotPow2Ratio) {
  const HeightLadder ladder{3, 12};  // ratio 4 but h_min=3 is fine; ratio
  EXPECT_TRUE(ladder.valid());       // must be a power of two: 12/3 = 4. OK.
  const HeightLadder bad{4, 12};     // 12/4 = 3: invalid
  EXPECT_FALSE(bad.valid());
}

TEST(HeightLadderTest, RungForClampsAndRounds) {
  const HeightLadder ladder{4, 64};
  EXPECT_EQ(ladder.rung_for(1), 0u);
  EXPECT_EQ(ladder.rung_for(4), 0u);
  EXPECT_EQ(ladder.rung_for(5), 1u);   // rounds up to 8
  EXPECT_EQ(ladder.rung_for(8), 1u);
  EXPECT_EQ(ladder.rung_for(33), 4u);  // rounds up to 64
  EXPECT_EQ(ladder.rung_for(1000), 4u);  // clamps to top
}

TEST(HeightLadderTest, Contains) {
  const HeightLadder ladder{4, 64};
  EXPECT_TRUE(ladder.contains(4));
  EXPECT_TRUE(ladder.contains(32));
  EXPECT_FALSE(ladder.contains(2));
  EXPECT_FALSE(ladder.contains(12));
  EXPECT_FALSE(ladder.contains(128));
}

TEST(HeightLadderTest, ForCacheGeometry) {
  const HeightLadder ladder = HeightLadder::for_cache(64, 8);
  EXPECT_EQ(ladder.h_min, 8u);
  EXPECT_EQ(ladder.h_max, 64u);
  EXPECT_EQ(ladder.num_heights(), 4u);
}

TEST(BoxProfileTest, Totals) {
  BoxProfile profile({Box{2, 10}, Box{4, 20}});
  EXPECT_EQ(profile.total_impact(), 2u * 10 + 4u * 20);
  EXPECT_EQ(profile.total_duration(), 30u);
  EXPECT_EQ(profile.size(), 2u);
}

TEST(BoxProfileTest, Conformance) {
  const HeightLadder ladder{2, 8};
  BoxProfile good({Box{2, 4}, Box{8, 16}});
  EXPECT_TRUE(good.conforms_to(ladder));
  BoxProfile bad({Box{3, 4}});
  EXPECT_FALSE(bad.conforms_to(ladder));
}

}  // namespace
}  // namespace ppg
