#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/rng.hpp"

namespace ppg {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowOneIsZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextInInclusive) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.next_in(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= v == 5;
    saw_hi |= v == 8;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 5000; ++i) {
    const double u = rng.next_double();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, NextDoubleRoughlyUniform) {
  Rng rng(17);
  const int n = 100000;
  int low_half = 0;
  for (int i = 0; i < n; ++i)
    if (rng.next_double() < 0.5) ++low_half;
  // 4-sigma band around n/2 for a fair coin.
  EXPECT_NEAR(low_half, n / 2, 4 * 160);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(19);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i)
    if (rng.next_bool(0.25)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.fork();
  // Child and parent streams should not be identical from here on.
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (parent() == child()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(29);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Splitmix64, KnownSequenceIsStable) {
  std::uint64_t state = 0;
  const std::uint64_t a = splitmix64(state);
  const std::uint64_t b = splitmix64(state);
  EXPECT_NE(a, b);
  // Re-seeding reproduces the stream.
  std::uint64_t state2 = 0;
  EXPECT_EQ(splitmix64(state2), a);
  EXPECT_EQ(splitmix64(state2), b);
}

}  // namespace
}  // namespace ppg
