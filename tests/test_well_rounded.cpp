#include <gtest/gtest.h>

#include "core/scheduler_factory.hpp"
#include "core/well_rounded.hpp"
#include "trace/generators.hpp"

namespace ppg {
namespace {

MultiTrace equal_streams(ProcId p, std::size_t len) {
  // Equal-length single-use traces: nobody finishes early, so the phase
  // structure stays put for the whole measurement.
  MultiTrace mt;
  for (ProcId i = 0; i < p; ++i)
    mt.add(gen::rebase_to_proc(gen::single_use(len), i));
  return mt;
}

EngineConfig config_for(Height k, Time s) {
  EngineConfig c;
  c.cache_size = k;
  c.miss_cost = s;
  return c;
}

TEST(WellRounded, DetParSatisfiesBothProperties) {
  const MultiTrace mt = equal_streams(8, 20000);
  auto scheduler = make_scheduler(SchedulerKind::kDetPar);
  const WellRoundedReport report =
      check_well_rounded(mt, *scheduler, config_for(64, 4));
  EXPECT_TRUE(report.gap_free);
  // The construction's constant: every normalized gap stays below a
  // modest bound (the proof's constant is larger; 16 is empirical).
  EXPECT_LT(report.worst_normalized(), 16.0);
  // Every rung was actually delivered to every processor.
  for (const auto& per_proc : report.deliveries)
    for (std::uint64_t count : per_proc) EXPECT_GT(count, 0u);
}

TEST(WellRounded, ReportGeometry) {
  const MultiTrace mt = equal_streams(8, 4000);
  auto scheduler = make_scheduler(SchedulerKind::kDetPar);
  const WellRoundedReport report =
      check_well_rounded(mt, *scheduler, config_for(64, 4));
  EXPECT_EQ(report.base_height, 16u);  // 2k/p = 16
  ASSERT_EQ(report.rungs.size(), 3u);  // 16, 32, 64
  EXPECT_EQ(report.rungs.back(), 64u);
  EXPECT_EQ(report.worst_gap.size(), 8u);
}

TEST(WellRounded, StaticPartitionIsNotWellRounded) {
  // STATIC never allocates boxes taller than k/p, so tall rungs are never
  // delivered: their worst gap stays 0 but the normalized check exposes it
  // via the companion "was it ever delivered" signal used above. Here we
  // assert the discriminating direction: DET-PAR delivers the top rung,
  // STATIC does not.
  const MultiTrace mt = equal_streams(8, 8000);
  auto det = make_scheduler(SchedulerKind::kDetPar);
  auto stat = make_scheduler(SchedulerKind::kStatic);
  const EngineConfig c = config_for(64, 4);
  const WellRoundedReport det_report = check_well_rounded(mt, *det, c);
  const WellRoundedReport stat_report = check_well_rounded(mt, *stat, c);
  // DET-PAR delivered the top rung to processor 0; STATIC never did.
  EXPECT_GT(det_report.deliveries[0].back(), 0u);
  EXPECT_EQ(stat_report.deliveries[0].back(), 0u);
}

TEST(WellRounded, EquiDeliversOnlyBaseUntilFinishes) {
  // With equal lengths, EQUI's slices never grow: like STATIC it fails
  // property 2 for every rung above the base.
  const MultiTrace mt = equal_streams(8, 8000);
  auto equi = make_scheduler(SchedulerKind::kEqui);
  const WellRoundedReport report =
      check_well_rounded(mt, *equi, config_for(64, 4));
  for (std::size_t r = 1; r < report.rungs.size(); ++r)
    EXPECT_EQ(report.deliveries[0][r], 0u) << "rung " << r;
}

}  // namespace
}  // namespace ppg
