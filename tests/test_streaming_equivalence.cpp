// Byte-identical-equivalence suite for the streaming pipeline: every
// scheduler, runner and harness entry point must produce exactly the same
// metrics whether the instance is materialized up front or pulled lazily
// from generator sources. Equivalence is by construction (the materialized
// builders drain the streaming cursors), and this suite pins it.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/global_lru.hpp"
#include "core/parallel_engine.hpp"
#include "core/replay.hpp"
#include "core/scheduler_factory.hpp"
#include "bench_support/experiment.hpp"
#include "green/box_runner.hpp"
#include "green/policy_box_runner.hpp"
#include "opt/opt_bounds.hpp"
#include "test_helpers.hpp"
#include "trace/generators.hpp"
#include "trace/trace_source.hpp"
#include "trace/trace_spec.hpp"
#include "trace/workload.hpp"
#include "util/error.hpp"

namespace ppg {
namespace {

void expect_same_result(const ParallelRunResult& a, const ParallelRunResult& b,
                        const std::string& label) {
  EXPECT_EQ(a.makespan, b.makespan) << label;
  EXPECT_EQ(a.completion, b.completion) << label;
  EXPECT_EQ(a.mean_completion, b.mean_completion) << label;
  EXPECT_EQ(a.hits, b.hits) << label;
  EXPECT_EQ(a.misses, b.misses) << label;
  EXPECT_EQ(a.num_boxes, b.num_boxes) << label;
  EXPECT_EQ(a.total_stall, b.total_stall) << label;
  EXPECT_EQ(a.total_impact, b.total_impact) << label;
  EXPECT_EQ(a.peak_concurrent_height, b.peak_concurrent_height) << label;
  EXPECT_EQ(a.effective_augmentation, b.effective_augmentation) << label;
}

WorkloadParams small_params() {
  WorkloadParams wp;
  wp.num_procs = 4;
  wp.cache_size = 16;
  wp.requests_per_proc = 500;
  wp.seed = 23;
  wp.miss_cost = 4;
  return wp;
}

TEST(StreamingEquivalence, EverySchedulerMatchesMaterialized) {
  const WorkloadParams wp = small_params();
  for (const WorkloadKind wkind :
       {WorkloadKind::kHeterogeneousMix, WorkloadKind::kCacheHungry}) {
    const MultiTrace traces = make_workload(wkind, wp);
    const MultiTraceSource sources = make_workload_source(wkind, wp);

    EngineConfig ec;
    ec.cache_size = wp.cache_size;
    ec.miss_cost = wp.miss_cost;
    ec.seed = 9;
    for (const SchedulerKind kind : all_scheduler_kinds()) {
      // Fresh scheduler per run: randomized schedulers must see identical
      // seeds and draw identical streams in both modes.
      const auto dense = make_scheduler(kind, /*seed=*/9);
      const ParallelRunResult a = run_parallel(traces, *dense, ec);
      const auto streamed = make_scheduler(kind, /*seed=*/9);
      const ParallelRunResult b = run_parallel(sources, *streamed, ec);
      expect_same_result(a, b, std::string(scheduler_kind_name(kind)) + "/" +
                                   workload_kind_name(wkind));
    }
  }
}

TEST(StreamingEquivalence, GlobalLruMatchesMaterialized) {
  const WorkloadParams wp = small_params();
  const MultiTrace traces = make_workload(WorkloadKind::kZipf, wp);
  const MultiTraceSource sources =
      make_workload_source(WorkloadKind::kZipf, wp);
  GlobalLruConfig gc;
  gc.cache_size = wp.cache_size;
  gc.miss_cost = wp.miss_cost;
  expect_same_result(run_global_lru(traces, gc), run_global_lru(sources, gc),
                     "GLOBAL-LRU");
}

TEST(StreamingEquivalence, RunInstanceMatchesMaterialized) {
  const WorkloadParams wp = small_params();
  const MultiTrace traces = make_workload(WorkloadKind::kPollutedCycles, wp);
  const MultiTraceSource sources =
      make_workload_source(WorkloadKind::kPollutedCycles, wp);

  ExperimentConfig config;
  config.cache_size = wp.cache_size;
  config.miss_cost = wp.miss_cost;
  config.seed = 3;
  const InstanceOutcome a =
      run_instance(traces, all_scheduler_kinds(), config);
  const InstanceOutcome b =
      run_instance(sources, all_scheduler_kinds(), config);

  EXPECT_EQ(a.bounds.lower_bound(), b.bounds.lower_bound());
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].name, b.outcomes[i].name);
    EXPECT_EQ(a.outcomes[i].status.ok(), b.outcomes[i].status.ok());
    expect_same_result(a.outcomes[i].result, b.outcomes[i].result,
                       a.outcomes[i].name);
    EXPECT_EQ(a.outcomes[i].makespan_ratio, b.outcomes[i].makespan_ratio);
    EXPECT_EQ(a.outcomes[i].mean_ct_ratio, b.outcomes[i].mean_ct_ratio);
  }
}

TEST(StreamingEquivalence, OptBoundsMatchMaterialized) {
  const WorkloadParams wp = small_params();
  const MultiTrace traces = make_workload(WorkloadKind::kCacheHungry, wp);
  const MultiTraceSource sources =
      make_workload_source(WorkloadKind::kCacheHungry, wp);
  OptBoundsConfig bc;
  bc.cache_size = wp.cache_size;
  bc.miss_cost = wp.miss_cost;
  const OptBounds a = compute_opt_bounds(traces, bc);
  const OptBounds b = compute_opt_bounds(sources, bc);
  EXPECT_EQ(a.lower_bound(), b.lower_bound());
  EXPECT_EQ(a.lb_max_length, b.lb_max_length);
  EXPECT_EQ(a.lb_max_single, b.lb_max_single);
  EXPECT_EQ(a.lb_impact, b.lb_impact);
}

TEST(StreamingEquivalence, BoxRunnerStreamingModeMatchesDense) {
  const Trace trace = gen::polluted_cycle(9, 400, 5);
  const auto view = VectorTraceSource::view(trace);

  BoxRunner dense(trace, /*miss_cost=*/6);
  // The cursor constructor forces streaming mode even though the payload
  // is resident — the two modes must agree box by box.
  BoxRunner streaming(view->cursor(), /*miss_cost=*/6);

  const struct {
    Height h;
    Time d;
  } boxes[] = {{4, 40}, {2, 16}, {8, 100}, {1, 9}, {16, 300}, {8, 500}};
  for (const auto& box : boxes) {
    const BoxStepResult a = dense.run_box(box.h, box.d);
    const BoxStepResult b = streaming.run_box(box.h, box.d);
    EXPECT_EQ(a.requests_completed, b.requests_completed);
    EXPECT_EQ(a.hits, b.hits);
    EXPECT_EQ(a.misses, b.misses);
    EXPECT_EQ(a.busy_time, b.busy_time);
    EXPECT_EQ(a.stall_time, b.stall_time);
    EXPECT_EQ(a.finished, b.finished);
    EXPECT_EQ(dense.position(), streaming.position());
    if (a.finished) break;
  }
  EXPECT_EQ(dense.total_hits(), streaming.total_hits());
  EXPECT_EQ(dense.total_misses(), streaming.total_misses());

  // reset() rewinds the streaming cursor to its initial state.
  dense.reset();
  streaming.reset();
  const BoxStepResult a = dense.run_box(4, 40);
  const BoxStepResult b = streaming.run_box(4, 40);
  EXPECT_EQ(a.requests_completed, b.requests_completed);
  EXPECT_EQ(a.misses, b.misses);
}

TEST(StreamingEquivalence, RunProfileMatchesOverGeneratorSource) {
  Rng rng(41);
  const auto source = gen::zipf_source(30, 600, 1.0, rng);
  const Trace trace = materialize(*source);

  BoxProfile profile;
  for (int i = 0; i < 128; ++i)
    profile.push_back(canonical_box(static_cast<Height>(1u << (i % 5)), 64));

  const ProfileRunResult a = run_profile(trace, profile, /*miss_cost=*/8);
  const ProfileRunResult b = run_profile(*source, profile, /*miss_cost=*/8);
  EXPECT_EQ(a.time, b.time);
  EXPECT_EQ(a.impact, b.impact);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.boxes_used, b.boxes_used);
}

TEST(StreamingEquivalence, PolicyRunnerStreamsOnlinePolicies) {
  const Trace trace = gen::polluted_cycle(7, 300, 4);
  const auto view = VectorTraceSource::view(trace);
  for (const PolicyKind kind :
       {PolicyKind::kLru, PolicyKind::kFifo, PolicyKind::kClock,
        PolicyKind::kRandom, PolicyKind::kLfu, PolicyKind::kMru,
        PolicyKind::kSlru, PolicyKind::kArc}) {
    PolicyBoxRunner dense(trace, /*miss_cost=*/5, kind, /*seed=*/3);
    PolicyBoxRunner streaming(view->cursor(), /*miss_cost=*/5, kind,
                              /*seed=*/3);
    while (true) {
      const BoxStepResult a = dense.run_box(8, 120);
      const BoxStepResult b = streaming.run_box(8, 120);
      ASSERT_EQ(a.requests_completed, b.requests_completed)
          << "policy " << static_cast<int>(kind);
      ASSERT_EQ(a.misses, b.misses);
      ASSERT_EQ(a.finished, b.finished);
      if (a.finished) break;
    }
  }
}

TEST(StreamingEquivalence, StreamingBeladyIsRejected) {
  const Trace trace = gen::cyclic(4, 20);
  const auto view = VectorTraceSource::view(trace);
  // Dense mode (Trace or materialized source) supports the clairvoyant
  // policy; a raw cursor cannot.
  PolicyBoxRunner ok(*view, /*miss_cost=*/2, PolicyKind::kBelady);
  EXPECT_DEATH(PolicyBoxRunner(view->cursor(), 2, PolicyKind::kBelady), "");
}

// --- Replay dump v2 --------------------------------------------------------

TEST(ReplayDumpV2, SpecBackedDumpRoundTripsWithoutVectors) {
  ReplayDump dump;
  dump.cache_size = 32;
  dump.miss_cost = 8;
  dump.seed = 5;
  dump.scheduler_spec = "DET-PAR";
  dump.trace_spec = "workload(kind=zipf,p=2,k=32,n=100,seed=5,s=8)";
  dump.has_traces = false;
  dump.reason = Error{};

  const std::string path = testing::TempDir() + "ppg_spec_dump.ppgreplay";
  save_replay_dump(path, dump);
  const ReplayDump back = load_replay_dump(path);
  EXPECT_EQ(back.trace_spec, dump.trace_spec);
  EXPECT_FALSE(back.has_traces);
  EXPECT_EQ(back.traces.num_procs(), 0u);
  EXPECT_EQ(back.scheduler_spec, "DET-PAR");

  // Replay regenerates the instance from the spec and completes clean.
  const CheckedRun rerun = run_replay(back);
  EXPECT_TRUE(rerun.status.ok());
  EXPECT_GT(rerun.result.makespan, 0u);
  std::remove(path.c_str());
}

TEST(ReplayDumpV2, SpecBackedReplayMatchesEmbeddedReplay) {
  WorkloadParams wp;
  wp.num_procs = 2;
  wp.cache_size = 32;
  wp.requests_per_proc = 100;
  wp.seed = 5;
  wp.miss_cost = 8;

  ReplayDump embedded;
  embedded.cache_size = 32;
  embedded.miss_cost = 8;
  embedded.seed = 5;
  embedded.scheduler_spec = "DET-PAR";
  embedded.traces = make_workload(WorkloadKind::kZipf, wp);

  ReplayDump spec_backed = embedded;
  spec_backed.traces = MultiTrace{};
  spec_backed.has_traces = false;
  spec_backed.trace_spec = workload_trace_spec(WorkloadKind::kZipf, wp);

  const CheckedRun a = run_replay(embedded);
  const CheckedRun b = run_replay(spec_backed);
  ASSERT_TRUE(a.status.ok());
  ASSERT_TRUE(b.status.ok());
  EXPECT_EQ(a.result.makespan, b.result.makespan);
  EXPECT_EQ(a.result.misses, b.result.misses);
  EXPECT_EQ(a.result.completion, b.result.completion);
}

TEST(ReplayDumpV2, DumpWithNeitherTracesNorSpecIsNotReplayable) {
  ReplayDump dump;
  dump.cache_size = 8;
  dump.scheduler_spec = "EQUI";
  dump.has_traces = false;
  try {
    run_replay(dump);
    FAIL() << "replayed a dump with no traces and no spec";
  } catch (const PpgException& e) {
    EXPECT_EQ(e.error().code, ErrorCode::kBadInput);
  }
}

TEST(ReplayDumpV2, EngineRecordsSpecInsteadOfVectors) {
  WorkloadParams wp;
  wp.num_procs = 2;
  wp.cache_size = 8;
  wp.requests_per_proc = 200;
  wp.seed = 3;
  wp.miss_cost = 4;

  EngineConfig ec;
  ec.cache_size = wp.cache_size;
  ec.miss_cost = wp.miss_cost;
  ec.scheduler_spec = "RAND-PAR";
  ec.trace_spec = workload_trace_spec(WorkloadKind::kHomogeneousCyclic, wp);
  ec.replay_dump_path = testing::TempDir() + "ppg_engine_spec.ppgreplay";
  // Force a watchdog failure so the engine writes a dump.
  ec.max_time = 1;

  const auto scheduler = make_scheduler(SchedulerKind::kRandPar, 3);
  const CheckedRun run = run_parallel_checked(
      make_workload_source(WorkloadKind::kHomogeneousCyclic, wp), *scheduler,
      ec);
  ASSERT_FALSE(run.status.ok());
  ASSERT_FALSE(run.status.replay_dump_path.empty());

  const ReplayDump dump = load_replay_dump(run.status.replay_dump_path);
  EXPECT_FALSE(dump.has_traces);
  EXPECT_EQ(dump.trace_spec, ec.trace_spec);
  EXPECT_EQ(dump.traces.num_procs(), 0u);
  std::remove(run.status.replay_dump_path.c_str());
}

}  // namespace
}  // namespace ppg
