// EngineConfig::engine_threads is a pure throughput knob: the batched
// threaded event loop must produce byte-identical results — every metric,
// the completion vector, the memory-timeline peak, and every structured
// failure (watchdog, event budget, contract violation, replay dump) — at
// every thread count, for materialized and streamed instances alike.
// scripts/tier1.sh races this suite under TSan.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_support/parallel_sweep.hpp"
#include "core/global_lru.hpp"
#include "core/parallel_engine.hpp"
#include "core/scheduler_factory.hpp"
#include "trace/workload.hpp"
#include "util/interrupt.hpp"
#include "util/thread_pool.hpp"

namespace ppg {
namespace {

std::vector<std::size_t> thread_counts() {
  return {0, 2, 4, ThreadPool::hardware_jobs()};
}

WorkloadParams study_params() {
  WorkloadParams wp;
  wp.num_procs = 8;
  wp.cache_size = 64;
  wp.requests_per_proc = 600;
  wp.seed = 11;
  return wp;
}

void expect_identical(const ParallelRunResult& got,
                      const ParallelRunResult& want,
                      const std::string& label) {
  EXPECT_EQ(got.makespan, want.makespan) << label;
  EXPECT_EQ(got.completion, want.completion) << label;
  EXPECT_EQ(got.mean_completion, want.mean_completion) << label;
  EXPECT_EQ(got.hits, want.hits) << label;
  EXPECT_EQ(got.misses, want.misses) << label;
  EXPECT_EQ(got.num_boxes, want.num_boxes) << label;
  EXPECT_EQ(got.total_stall, want.total_stall) << label;
  EXPECT_EQ(got.total_impact, want.total_impact) << label;
  EXPECT_EQ(got.peak_concurrent_height, want.peak_concurrent_height) << label;
  EXPECT_EQ(got.effective_augmentation, want.effective_augmentation) << label;
}

void expect_identical_failure(const CheckedRun& got, const CheckedRun& want,
                              const std::string& label) {
  ASSERT_FALSE(got.status.ok()) << label;
  ASSERT_FALSE(want.status.ok()) << label;
  EXPECT_EQ(got.status.error.code, want.status.error.code) << label;
  EXPECT_EQ(got.status.error.message, want.status.error.message) << label;
  EXPECT_EQ(got.status.error.proc, want.status.error.proc) << label;
  EXPECT_EQ(got.status.error.time, want.status.error.time) << label;
  expect_identical(got.result, want.result, label);
}

/// Builds a fresh scheduler for (kind-ish) name: the facade and stateful
/// schedulers must be rebuilt per run so every run starts identically.
std::unique_ptr<BoxScheduler> build(const std::string& name,
                                    std::uint64_t seed) {
  if (name == "GLOBAL-LRU") return make_global_lru_box_facade();
  if (name == "RAND-PAR") return make_scheduler(SchedulerKind::kRandPar, seed);
  return make_scheduler(SchedulerKind::kDetPar, seed);
}

TEST(EngineThreads, MaterializedRunsMatchSerialAtEveryThreadCount) {
  const MultiTrace mt =
      make_workload(WorkloadKind::kHeterogeneousMix, study_params());
  for (const std::string name : {"DET-PAR", "RAND-PAR", "GLOBAL-LRU"}) {
    EngineConfig ec;
    ec.cache_size = study_params().cache_size;
    ec.miss_cost = 4;
    auto serial_sched = build(name, 3);
    const ParallelRunResult want = run_parallel(mt, *serial_sched, ec);
    for (const std::size_t threads : thread_counts()) {
      ec.engine_threads = threads;
      auto sched = build(name, 3);
      const ParallelRunResult got = run_parallel(mt, *sched, ec);
      expect_identical(got, want,
                       name + " threads=" + std::to_string(threads));
    }
  }
}

TEST(EngineThreads, StreamedRunsMatchSerialAtEveryThreadCount) {
  const MultiTraceSource sources =
      make_workload_source(WorkloadKind::kHeterogeneousMix, study_params());
  const MultiTrace mt =
      make_workload(WorkloadKind::kHeterogeneousMix, study_params());
  for (const std::string name : {"DET-PAR", "RAND-PAR", "GLOBAL-LRU"}) {
    EngineConfig ec;
    ec.cache_size = study_params().cache_size;
    ec.miss_cost = 4;
    // The materialized serial run is the single reference: streamed and
    // threaded must both land on it exactly.
    auto ref_sched = build(name, 3);
    const ParallelRunResult want = run_parallel(mt, *ref_sched, ec);
    for (const std::size_t threads : thread_counts()) {
      ec.engine_threads = threads;
      auto sched = build(name, 3);
      const ParallelRunResult got = run_parallel(sources, *sched, ec);
      expect_identical(got, want, name + " streamed threads=" +
                                      std::to_string(threads));
    }
  }
}

/// Issues boxes that stall forever — only the watchdog can stop the run.
class StallingScheduler final : public BoxScheduler {
 public:
  void start(const SchedulerContext&, const EngineView&) override {}
  BoxAssignment next_box(ProcId, Time now, const EngineView&) override {
    const Time far = now + (Time{1} << 50);
    return BoxAssignment{1, far, far + 8};
  }
  const char* name() const override { return "STALLER"; }
};

/// Returns a malformed (zero-height) box on the n-th request.
class EventuallyMalformedScheduler final : public BoxScheduler {
 public:
  explicit EventuallyMalformedScheduler(int malformed_at)
      : malformed_at_(malformed_at) {}
  void start(const SchedulerContext&, const EngineView&) override {}
  BoxAssignment next_box(ProcId, Time now, const EngineView&) override {
    if (calls_++ < malformed_at_) return BoxAssignment{4, now, now + 16};
    return BoxAssignment{0, now, now + 16};
  }
  const char* name() const override { return "MALFORMED"; }

 private:
  int malformed_at_;
  int calls_ = 0;
};

TEST(EngineThreads, WatchdogFailureIdenticalUnderThreads) {
  const MultiTrace mt =
      make_workload(WorkloadKind::kHeterogeneousMix, study_params());
  EngineConfig ec;
  ec.cache_size = study_params().cache_size;
  ec.miss_cost = 4;
  ec.max_time = 1 << 16;
  StallingScheduler serial_sched;
  const CheckedRun want = run_parallel_checked(mt, serial_sched, ec);
  ASSERT_EQ(want.status.error.code, ErrorCode::kWatchdogTimeout);
  for (const std::size_t threads : thread_counts()) {
    ec.engine_threads = threads;
    StallingScheduler sched;
    const CheckedRun got = run_parallel_checked(mt, sched, ec);
    expect_identical_failure(got, want,
                             "watchdog threads=" + std::to_string(threads));
  }
}

TEST(EngineThreads, EventBudgetFailureIdenticalUnderThreads) {
  const MultiTrace mt =
      make_workload(WorkloadKind::kHeterogeneousMix, study_params());
  EngineConfig ec;
  ec.cache_size = study_params().cache_size;
  ec.miss_cost = 4;
  // Fails mid-batch: with p=8 processors the time-0 batch alone holds 8
  // events, so the prefix-fold path (not just the batch boundary) is hit.
  ec.max_events = 5;
  auto serial_sched = make_scheduler(SchedulerKind::kDetPar, 3);
  const CheckedRun want = run_parallel_checked(mt, *serial_sched, ec);
  ASSERT_EQ(want.status.error.code, ErrorCode::kCellBudgetExceeded);
  for (const std::size_t threads : thread_counts()) {
    ec.engine_threads = threads;
    auto sched = make_scheduler(SchedulerKind::kDetPar, 3);
    const CheckedRun got = run_parallel_checked(mt, *sched, ec);
    expect_identical_failure(got, want,
                             "budget threads=" + std::to_string(threads));
  }
}

TEST(EngineThreads, ContractViolationIdenticalUnderThreads) {
  const MultiTrace mt =
      make_workload(WorkloadKind::kHeterogeneousMix, study_params());
  EngineConfig ec;
  ec.cache_size = study_params().cache_size;
  ec.miss_cost = 4;
  // Malformed mid-batch at the very first step: events 0..2 of the time-0
  // batch are folded, event 3 fails.
  EventuallyMalformedScheduler serial_sched(3);
  const CheckedRun want = run_parallel_checked(mt, serial_sched, ec);
  ASSERT_EQ(want.status.error.code, ErrorCode::kContractViolation);
  for (const std::size_t threads : thread_counts()) {
    ec.engine_threads = threads;
    EventuallyMalformedScheduler sched(3);
    const CheckedRun got = run_parallel_checked(mt, sched, ec);
    expect_identical_failure(got, want,
                             "contract threads=" + std::to_string(threads));
  }
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(EngineThreads, ReplayDumpByteIdenticalUnderThreads) {
  const MultiTrace mt =
      make_workload(WorkloadKind::kHeterogeneousMix, study_params());
  EngineConfig ec;
  ec.cache_size = study_params().cache_size;
  ec.miss_cost = 4;
  ec.max_time = 1 << 16;
  ec.replay_dump_path = ::testing::TempDir() + "ppg_threads_serial.ppgreplay";
  StallingScheduler serial_sched;
  const CheckedRun want = run_parallel_checked(mt, serial_sched, ec);
  ASSERT_EQ(want.status.replay_dump_path, ec.replay_dump_path);
  const std::string want_bytes = slurp(ec.replay_dump_path);
  ASSERT_FALSE(want_bytes.empty());

  ec.engine_threads = 4;
  ec.replay_dump_path = ::testing::TempDir() + "ppg_threads_par.ppgreplay";
  StallingScheduler sched;
  const CheckedRun got = run_parallel_checked(mt, sched, ec);
  ASSERT_EQ(got.status.replay_dump_path, ec.replay_dump_path);
  EXPECT_EQ(slurp(ec.replay_dump_path), want_bytes);
  std::remove((::testing::TempDir() + "ppg_threads_serial.ppgreplay").c_str());
  std::remove(ec.replay_dump_path.c_str());
}

TEST(EngineThreads, InterruptedSweepDrainsWholeThreadedCells) {
  // Drain-and-stop interruption operates at the sweep-cell level; a cell
  // whose engine fans out across threads must still complete whole, with
  // the same kInterrupted surface as serial cells.
  clear_interrupt();
  const MultiTrace mt =
      make_workload(WorkloadKind::kHeterogeneousMix, study_params());
  EngineConfig ec;
  ec.cache_size = study_params().cache_size;
  ec.miss_cost = 4;
  auto ref_sched = make_scheduler(SchedulerKind::kDetPar, 3);
  const ParallelRunResult want = run_parallel(mt, *ref_sched, ec);

  ec.engine_threads = 4;
  ParallelRunResult first;
  bool have_first = false;
  bool interrupted = false;
  try {
    sweep_cells(1, 4, [&](std::size_t i) {
      // Interrupt while the first threaded cell is in flight: the engine's
      // internal fan-out ignores the flag, so the cell completes whole and
      // only the executor stops claiming further cells.
      if (i == 0) request_interrupt();
      auto sched = make_scheduler(SchedulerKind::kDetPar, 3);
      const ParallelRunResult r = run_parallel(mt, *sched, ec);
      if (i == 0) {
        first = r;
        have_first = true;
      }
      return r;
    });
  } catch (const PpgException& e) {
    EXPECT_EQ(e.error().code, ErrorCode::kInterrupted);
    interrupted = true;
  }
  EXPECT_TRUE(interrupted);
  ASSERT_TRUE(have_first);
  expect_identical(first, want, "interrupted threaded cell");
  clear_interrupt();
}

}  // namespace
}  // namespace ppg
