#include <gtest/gtest.h>

#include "core/global_lru.hpp"
#include "test_helpers.hpp"
#include "trace/generators.hpp"

namespace ppg {
namespace {

GlobalLruConfig config_for(Height k, Time s) {
  GlobalLruConfig c;
  c.cache_size = k;
  c.miss_cost = s;
  return c;
}

TEST(GlobalLru, SingleProcessorMatchesCacheSim) {
  MultiTrace mt;
  mt.add(gen::cyclic(6, 100));
  const ParallelRunResult r = run_global_lru(mt, config_for(8, 5));
  EXPECT_EQ(r.misses, 6u);
  EXPECT_EQ(r.makespan, 6u * 5 + 94u);
}

TEST(GlobalLru, HandComputedTwoProcs) {
  // k = 2, s = 3. Proc 0: a a. Proc 1: b b. Both pages fit: each proc
  // misses once then hits: completion = 3 + 1 = 4 for both.
  MultiTrace mt;
  mt.add(test::make_trace({1, 1}));
  MultiTrace tmp;
  Trace t2(std::vector<PageId>{make_page(1, 0), make_page(1, 0)});
  mt.add(t2);
  const ParallelRunResult r = run_global_lru(mt, config_for(2, 3));
  EXPECT_EQ(r.completion[0], 4u);
  EXPECT_EQ(r.completion[1], 4u);
  EXPECT_EQ(r.hits, 2u);
  EXPECT_EQ(r.misses, 2u);
}

TEST(GlobalLru, InterferenceEvictsOtherProcessorsPages) {
  // k = 2: proc 1 streams fresh pages, evicting proc 0's working set.
  // Proc 0 cycles two pages and would hit forever alone; with the
  // polluting neighbor it keeps missing.
  MultiTrace mt;
  mt.add(gen::rebase_to_proc(gen::cyclic(2, 50), 0));
  mt.add(gen::rebase_to_proc(gen::single_use(50), 1));
  const ParallelRunResult shared = run_global_lru(mt, config_for(2, 4));

  MultiTrace alone;
  alone.add(mt.trace(0));
  const ParallelRunResult solo = run_global_lru(alone, config_for(2, 4));
  EXPECT_GT(shared.misses, solo.misses + 25);
}

TEST(GlobalLru, CompletesEverything) {
  MultiTrace mt;
  for (ProcId i = 0; i < 6; ++i)
    mt.add(gen::rebase_to_proc(gen::cyclic(8, 500), i));
  const ParallelRunResult r = run_global_lru(mt, config_for(16, 4));
  EXPECT_EQ(r.hits + r.misses, mt.total_requests());
  EXPECT_LE(r.mean_completion, static_cast<double>(r.makespan));
}

TEST(GlobalLru, Deterministic) {
  MultiTrace mt;
  for (ProcId i = 0; i < 4; ++i)
    mt.add(gen::rebase_to_proc(gen::cyclic(10, 300), i));
  const ParallelRunResult a = run_global_lru(mt, config_for(8, 3));
  const ParallelRunResult b = run_global_lru(mt, config_for(8, 3));
  EXPECT_EQ(a.completion, b.completion);
}

TEST(GlobalLru, EmptyTraceCompletesImmediately) {
  MultiTrace mt;
  mt.add(Trace{});
  mt.add(test::make_trace({1}));
  const ParallelRunResult r = run_global_lru(mt, config_for(4, 2));
  EXPECT_EQ(r.completion[0], 0u);
  EXPECT_EQ(r.completion[1], 2u);
}

}  // namespace
}  // namespace ppg
