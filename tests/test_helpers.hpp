// Shared fixtures and fakes for the test suite.
#pragma once

#include <vector>

#include "core/scheduler.hpp"
#include "trace/trace.hpp"

namespace ppg::test {

/// An EngineView with a directly settable active set, for driving
/// schedulers without an engine.
class FakeView final : public EngineView {
 public:
  explicit FakeView(ProcId p) : active_(p, true), count_(p) {}

  ProcId num_procs() const override {
    return static_cast<ProcId>(active_.size());
  }
  ProcId active_count() const override { return count_; }
  bool is_active(ProcId proc) const override { return active_[proc]; }

  void finish(ProcId proc) {
    if (active_[proc]) {
      active_[proc] = false;
      --count_;
    }
  }

 private:
  std::vector<bool> active_;
  ProcId count_;
};

/// Builds a Trace from an initializer-list of small ints (test shorthand).
inline Trace make_trace(std::initializer_list<int> pages) {
  std::vector<PageId> reqs;
  for (int p : pages) reqs.push_back(static_cast<PageId>(p));
  return Trace(std::move(reqs));
}

}  // namespace ppg::test
