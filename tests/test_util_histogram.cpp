#include <gtest/gtest.h>

#include "util/histogram.hpp"

namespace ppg {
namespace {

TEST(Histogram, CountsAndOverflow) {
  Histogram h(4);
  h.add(0);
  h.add(1);
  h.add(1);
  h.add(3);
  h.add(9);  // overflow
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(1), 2u);
  EXPECT_EQ(h.bin(2), 0u);
  EXPECT_EQ(h.bin(3), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, WeightedAdds) {
  Histogram h(2);
  h.add(0, 10);
  h.add(1, 5);
  EXPECT_EQ(h.bin(0), 10u);
  EXPECT_EQ(h.bin(1), 5u);
  EXPECT_EQ(h.total(), 15u);
}

TEST(Histogram, FrequencyNormalizes) {
  Histogram h(2);
  EXPECT_EQ(h.frequency(0), 0.0);  // empty histogram
  h.add(0, 3);
  h.add(1, 1);
  EXPECT_DOUBLE_EQ(h.frequency(0), 0.75);
  EXPECT_DOUBLE_EQ(h.frequency(1), 0.25);
}

TEST(Histogram, ToStringMentionsOverflow) {
  Histogram h(1);
  h.add(5);
  EXPECT_NE(h.to_string().find(">=1"), std::string::npos);
}

TEST(Log2Histogram, BucketBoundaries) {
  Log2Histogram h;
  h.add(0);  // bucket 0: values {0}
  h.add(1);  // bucket 1: values {1, 2}
  h.add(2);
  h.add(3);  // bucket 2: values {3..6}
  h.add(6);
  h.add(7);  // bucket 3: values {7..14}
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.total(), 6u);
}

TEST(Log2Histogram, GrowsOnDemand) {
  Log2Histogram h;
  h.add(1'000'000);
  EXPECT_GE(h.num_buckets(), 20u);
  EXPECT_EQ(h.total(), 1u);
}

}  // namespace
}  // namespace ppg
