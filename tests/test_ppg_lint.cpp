// Fixture suite for ppg_lint: every rule must (a) fire on its violating
// fixture and on nothing else in that fixture, (b) stay silent on the clean
// twin, and (c) be silenced by the suppression comment. This is the proof
// that the PpgLint.Repo gate can neither miss the invariant it guards nor
// lock a justified exception out of the tree.
//
// Fixtures live in tests/lint_fixtures/ (excluded from the repo-wide lint
// walk precisely because the *_bad files violate rules on purpose).
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "rules.hpp"
#include "scan.hpp"

namespace ppg::lint {
namespace {

std::string fixture_path(const std::string& name) {
  return std::string(PPG_LINT_FIXTURE_DIR) + "/" + name;
}

std::string read_fixture(const std::string& name) {
  std::ifstream in(fixture_path(name), std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << name;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool is_header_name(const std::string& name) {
  return name.size() >= 4 && name.compare(name.size() - 4, 4, ".hpp") == 0;
}

std::vector<Finding> lint_fixture(const std::string& name, Realm realm,
                                  bool service = false,
                                  bool containment = false) {
  const std::string text = read_fixture(name);
  ScannedFile scanned(name, text);
  FileInfo info;
  info.realm = realm;
  info.is_header = is_header_name(name);
  info.service = service;
  info.containment = containment;
  return run_rules(scanned, info, nullptr);
}

struct RuleCase {
  const char* rule;
  const char* stem;  ///< Fixture prefix: <stem>_bad, _good, _suppressed.
  const char* ext;   ///< ".cpp" or ".hpp".
  Realm realm;       ///< Realm the rule is scoped to.
  bool service = false;      ///< Lint as a src/service/ file.
  bool containment = false;  ///< Lint as a containment-layer file.

  friend void PrintTo(const RuleCase& rule_case, std::ostream* os) {
    *os << rule_case.rule;
  }
};

// Library-only rules run under Realm::kLibrary; universal rules use kApp to
// prove they fire even in the most permissive realm.
const RuleCase kCases[] = {
    {"banned-random", "banned_random", ".cpp", Realm::kApp},
    {"wall-clock", "wall_clock", ".cpp", Realm::kApp},
    {"unordered-iter", "unordered_iter", ".cpp", Realm::kApp},
    {"raw-throw", "raw_throw", ".cpp", Realm::kLibrary},
    {"abort-exit", "abort_exit", ".cpp", Realm::kLibrary},
    {"io-sink", "io_sink", ".cpp", Realm::kLibrary},
    {"raw-file-write", "raw_file_write", ".cpp", Realm::kLibrary},
    {"raw-getenv", "raw_getenv", ".cpp", Realm::kLibrary},
    {"raw-thread", "raw_thread", ".cpp", Realm::kLibrary},
    {"service-io", "service_io", ".cpp", Realm::kLibrary, true},
    {"service-catch-all", "service_catch_all", ".cpp", Realm::kLibrary, false,
     true},
    {"pragma-once", "pragma_once", ".hpp", Realm::kApp},
    {"using-namespace-header", "using_namespace", ".hpp", Realm::kApp},
};

class LintRule : public ::testing::TestWithParam<RuleCase> {};

TEST_P(LintRule, FiresOnBadFixture) {
  const RuleCase& rule_case = GetParam();
  const std::vector<Finding> findings = lint_fixture(
      std::string(rule_case.stem) + "_bad" + rule_case.ext, rule_case.realm,
      rule_case.service, rule_case.containment);
  ASSERT_FALSE(findings.empty())
      << rule_case.rule << " did not fire on its bad fixture";
  for (const Finding& finding : findings) {
    EXPECT_EQ(finding.rule, rule_case.rule)
        << "unexpected rule fired on " << rule_case.stem << "_bad at line "
        << finding.line << ": " << finding.message;
    EXPECT_GE(finding.line, 1u);
  }
}

TEST_P(LintRule, SilentOnGoodFixture) {
  const RuleCase& rule_case = GetParam();
  const std::vector<Finding> findings = lint_fixture(
      std::string(rule_case.stem) + "_good" + rule_case.ext, rule_case.realm,
      rule_case.service, rule_case.containment);
  for (const Finding& finding : findings) {
    ADD_FAILURE() << rule_case.stem << "_good is expected clean but got ["
                  << finding.rule << "] at line " << finding.line << ": "
                  << finding.message;
  }
}

TEST_P(LintRule, SuppressionSilencesBadFixture) {
  const RuleCase& rule_case = GetParam();
  const std::vector<Finding> findings =
      lint_fixture(std::string(rule_case.stem) + "_suppressed" + rule_case.ext,
                   rule_case.realm, rule_case.service, rule_case.containment);
  for (const Finding& finding : findings) {
    ADD_FAILURE() << rule_case.stem
                  << "_suppressed should be silenced but got ["
                  << finding.rule << "] at line " << finding.line << ": "
                  << finding.message;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, LintRule, ::testing::ValuesIn(kCases),
    [](const ::testing::TestParamInfo<RuleCase>& param_info) {
      std::string name = param_info.param.rule;
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

// Every rule in the table above must exist in the registry and vice versa,
// so a new rule cannot land without a fixture trio.
TEST(LintRegistry, EveryRuleHasAFixtureCase) {
  std::vector<std::string> registered;
  for (const RuleDesc& rule : all_rules()) registered.push_back(rule.id);
  std::vector<std::string> covered;
  for (const RuleCase& rule_case : kCases) covered.push_back(rule_case.rule);
  std::sort(registered.begin(), registered.end());
  std::sort(covered.begin(), covered.end());
  EXPECT_EQ(registered, covered);
}

// service-io is scoped by the FileInfo flag, not the realm: the same input
// I/O is legal library code elsewhere (e.g. trace/trace_io reads traces).
TEST(LintServiceIo, OnlyFiresWhenFileIsMarkedService) {
  const std::vector<Finding> findings =
      lint_fixture("service_io_bad.cpp", Realm::kLibrary, /*service=*/false);
  for (const Finding& finding : findings) {
    ADD_FAILURE() << "non-service file fired [" << finding.rule
                  << "] at line " << finding.line << ": " << finding.message;
  }
}

// service-catch-all is scoped by the containment flag: type-erasing
// catches are legal library code elsewhere (e.g. tools own their process
// boundary and may catch everything before exiting).
TEST(LintServiceCatchAll, OnlyFiresWhenFileIsMarkedContainment) {
  const std::vector<Finding> findings =
      lint_fixture("service_catch_all_bad.cpp", Realm::kLibrary,
                   /*service=*/false, /*containment=*/false);
  for (const Finding& finding : findings) {
    ADD_FAILURE() << "non-containment file fired [" << finding.rule
                  << "] at line " << finding.line << ": " << finding.message;
  }
}

// --- Scanner unit coverage: the properties the rules rely on. -------------

TEST(LintScanner, StringsAndCommentsAreBlanked) {
  ScannedFile file("f.cpp",
                   "int a; // std::rand() in prose\n"
                   "const char* s = \"std::rand()\";\n"
                   "/* std::abort() */ int b;\n");
  EXPECT_EQ(file.joined_code().find("rand"), std::string::npos);
  EXPECT_EQ(file.joined_code().find("abort"), std::string::npos);
  // Comment text is preserved on its own channel for directive parsing.
  EXPECT_NE(file.lines()[0].comment.find("std::rand"), std::string::npos);
}

TEST(LintScanner, RawStringsAndDigitSeparatorsSurvive) {
  ScannedFile file("f.cpp",
                   "auto s = R\"(time(nullptr))\";\n"
                   "long n = 1'000'000;\n"
                   "char c = 't';\n");
  EXPECT_EQ(file.joined_code().find("time"), std::string::npos);
  // The digit separator must not open a char literal that swallows the rest
  // of the line.
  EXPECT_NE(file.lines()[1].code.find("000;"), std::string::npos);
}

TEST(LintScanner, RawStringEncodingPrefixesAreRecognized) {
  // u8R / uR / UR / LR open raw strings exactly like bare R; a prefix the
  // scanner misses would leave the literal contents in the code channel.
  ScannedFile file("f.cpp",
                   "auto a = u8R\"(time(nullptr))\";\n"
                   "auto b = uR\"(rand())\";\n"
                   "auto c = UR\"(abort())\";\n"
                   "auto d = LR\"(getenv())\";\n");
  EXPECT_EQ(file.joined_code().find("time"), std::string::npos);
  EXPECT_EQ(file.joined_code().find("rand"), std::string::npos);
  EXPECT_EQ(file.joined_code().find("abort"), std::string::npos);
  EXPECT_EQ(file.joined_code().find("getenv"), std::string::npos);
}

TEST(LintScanner, RawStringDelimiterIsNotLeakedIntoCode) {
  // Regression: the closing delimiter of R"delim(...)delim" was once copied
  // into the code channel, so a delimiter spelling a banned token (here
  // "rand") produced a phantom finding.
  ScannedFile file("f.cpp", "auto s = R\"rand(payload)rand\";\n");
  EXPECT_EQ(file.joined_code().find("rand"), std::string::npos);
  EXPECT_EQ(file.joined_code().find("payload"), std::string::npos);
}

TEST(LintScanner, IdentifierEndingInRIsNotARawString) {
  // `fooR"x"` is an identifier followed by an ordinary string literal, not
  // a raw string: the scanner must not treat mid-identifier R as a prefix.
  ScannedFile file("f.cpp", "auto s = fooR\"time(\";\nint t;\n");
  EXPECT_NE(file.joined_code().find("fooR"), std::string::npos);
  EXPECT_EQ(file.joined_code().find("time"), std::string::npos);
  // The ordinary literal closed on its own line: the next line is code.
  EXPECT_NE(file.joined_code().find("int t;"), std::string::npos);
}

TEST(LintScanner, LineMappingIsStable) {
  ScannedFile file("f.cpp", "a\nbb\nccc\n");
  EXPECT_EQ(file.line_of_offset(0), 1u);   // 'a'
  EXPECT_EQ(file.line_of_offset(2), 2u);   // 'b'
  EXPECT_EQ(file.line_of_offset(5), 3u);   // 'c'
}

TEST(LintSuppression, DirectiveCoversOwnAndNextLineOnly) {
  const std::string text =
      "#include <ctime>  // ppg-lint: allow(wall-clock): here\n"
      "long a() { return std::time(nullptr); }  // covered? no: next line "
      "only counts from the directive line\n"
      "long b() { return std::time(nullptr); }\n";
  ScannedFile scanned("f.cpp", text);
  FileInfo info;
  info.realm = Realm::kApp;
  const std::vector<Finding> findings = run_rules(scanned, info, nullptr);
  // Line 1 (directive line) and line 2 (next line) are suppressed; line 3
  // still fires.
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "wall-clock");
  EXPECT_EQ(findings[0].line, 3u);
}

// --- Stale-suppression audit (ppg_lint --prune-suppressions). -------------

std::set<std::string> lint_rule_ids() {
  std::set<std::string> ids;
  for (const RuleDesc& rule : all_rules()) ids.insert(rule.id);
  return ids;
}

TEST(LintStaleSuppressions, LiveDirectiveIsKept) {
  ScannedFile scanned("f.cpp",
                      "// ppg-lint: allow(wall-clock): measured on purpose\n"
                      "long t() { return std::time(nullptr); }\n");
  FileInfo info;
  info.realm = Realm::kApp;
  const auto raw = run_rules_raw(scanned, info, nullptr);
  EXPECT_TRUE(find_stale_suppressions(scanned, raw, lint_rule_ids()).empty());
}

TEST(LintStaleSuppressions, DirectiveWithNoFindingIsStale) {
  ScannedFile scanned("f.cpp",
                      "// ppg-lint: allow(wall-clock): stale rationale\n"
                      "long t() { return 42; }\n");
  FileInfo info;
  info.realm = Realm::kApp;
  const auto raw = run_rules_raw(scanned, info, nullptr);
  const auto stale = find_stale_suppressions(scanned, raw, lint_rule_ids());
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0].rule, "wall-clock");
  EXPECT_EQ(stale[0].line, 1u);
  EXPECT_FALSE(stale[0].file_wide);
}

TEST(LintStaleSuppressions, FindingOutsideCoverageWindowIsStale) {
  // The finding on line 4 is NOT covered by the directive on line 1, so the
  // directive is stale even though the rule fires somewhere in the file.
  ScannedFile scanned("f.cpp",
                      "// ppg-lint: allow(wall-clock): drifted away\n"
                      "long a() { return 1; }\n"
                      "\n"
                      "long b() { return std::time(nullptr); }\n");
  FileInfo info;
  info.realm = Realm::kApp;
  const auto raw = run_rules_raw(scanned, info, nullptr);
  const auto stale = find_stale_suppressions(scanned, raw, lint_rule_ids());
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0].line, 1u);
}

TEST(LintStaleSuppressions, UnknownRuleIdsBelongToTheOtherTool) {
  // The suppression grammar is shared with ppg_analyze: a directive for a
  // rule this tool does not know must never be reported as stale.
  ScannedFile scanned("f.cpp",
                      "// ppg-lint: allow(guard-annotation): analyzer-owned\n"
                      "int x;\n");
  FileInfo info;
  info.realm = Realm::kApp;
  const auto raw = run_rules_raw(scanned, info, nullptr);
  EXPECT_TRUE(find_stale_suppressions(scanned, raw, lint_rule_ids()).empty());
}

TEST(LintStaleSuppressions, FileWideDirectiveAuditsTheWholeFile) {
  ScannedFile live("f.cpp",
                   "// ppg-lint: allow-file(wall-clock): bench timing\n"
                   "long a() { return 1; }\n"
                   "long b() { return std::time(nullptr); }\n");
  ScannedFile stale_file("g.cpp",
                         "// ppg-lint: allow-file(wall-clock): leftover\n"
                         "long a() { return 1; }\n");
  FileInfo info;
  info.realm = Realm::kApp;
  EXPECT_TRUE(find_stale_suppressions(
                  live, run_rules_raw(live, info, nullptr), lint_rule_ids())
                  .empty());
  const auto stale = find_stale_suppressions(
      stale_file, run_rules_raw(stale_file, info, nullptr), lint_rule_ids());
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_TRUE(stale[0].file_wide);
}

TEST(LintUnorderedIter, PairedHeaderDeclarationsAreVisible) {
  ScannedFile header("f.hpp",
                     "#pragma once\n"
                     "#include <unordered_map>\n"
                     "struct S { std::unordered_map<int, int> slots_; };\n");
  ScannedFile source("f.cpp",
                     "void drain(S& s) {\n"
                     "  for (const auto& kv : s.slots_) { (void)kv; }\n"
                     "}\n");
  FileInfo info;
  info.realm = Realm::kLibrary;
  info.is_header = false;
  const std::vector<Finding> findings = run_rules(source, info, &header);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unordered-iter");
  EXPECT_EQ(findings[0].line, 2u);
}

}  // namespace
}  // namespace ppg::lint
