// Failure replay dumps: lossless round-trip, engine-written dumps on
// violations and watchdog trips, re-execution reproducing the recorded
// failure, and rejection of corrupt dumps.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/parallel_engine.hpp"
#include "core/replay.hpp"
#include "core/scheduler_factory.hpp"
#include "trace/workload.hpp"

namespace ppg {
namespace {

MultiTrace small_workload() {
  WorkloadParams wp;
  wp.num_procs = 4;
  wp.cache_size = 16;
  wp.requests_per_proc = 300;
  wp.seed = 2;
  wp.miss_cost = 4;
  return make_workload(WorkloadKind::kZipf, wp);
}

ReplayDump sample_dump() {
  ReplayDump dump;
  dump.cache_size = 16;
  dump.miss_cost = 4;
  dump.max_time = 123456;
  dump.seed = 42;
  dump.scheduler_spec = "DET-PAR";
  dump.reason.code = ErrorCode::kContractViolation;
  dump.reason.message = "zero-height: box{h=0, [5, 9)} requested at t=5";
  dump.reason.proc = 1;
  dump.reason.time = 99;
  dump.traces = small_workload();
  return dump;
}

TEST(Replay, RoundTripPreservesEverything) {
  const ReplayDump dump = sample_dump();
  std::stringstream buffer;
  write_replay_dump(buffer, dump);
  const ReplayDump back = read_replay_dump(buffer);
  EXPECT_EQ(back.cache_size, dump.cache_size);
  EXPECT_EQ(back.miss_cost, dump.miss_cost);
  EXPECT_EQ(back.max_time, dump.max_time);
  EXPECT_EQ(back.seed, dump.seed);
  EXPECT_EQ(back.scheduler_spec, dump.scheduler_spec);
  EXPECT_EQ(back.reason.code, dump.reason.code);
  EXPECT_EQ(back.reason.message, dump.reason.message);
  EXPECT_EQ(back.reason.proc, dump.reason.proc);
  EXPECT_EQ(back.reason.time, dump.reason.time);
  EXPECT_TRUE(back.traces.traces() == dump.traces.traces());
}

TEST(Replay, EngineWritesDumpOnViolationAndReplayReproduces) {
  const MultiTrace mt = small_workload();
  const std::string spec = "VALIDATE(INJECT(zero-height,DET-PAR))";
  auto scheduler = make_scheduler_from_spec(spec, 9);
  EngineConfig ec;
  ec.cache_size = 16;
  ec.miss_cost = 4;
  ec.seed = 9;
  ec.scheduler_spec = spec;
  ec.replay_dump_path = ::testing::TempDir() + "ppg_violation.ppgreplay";

  const CheckedRun run = run_parallel_checked(mt, *scheduler, ec);
  ASSERT_FALSE(run.status.ok());
  EXPECT_EQ(run.status.error.code, ErrorCode::kContractViolation);
  ASSERT_EQ(run.status.replay_dump_path, ec.replay_dump_path);

  const ReplayDump dump = load_replay_dump(run.status.replay_dump_path);
  EXPECT_EQ(dump.scheduler_spec, spec);
  EXPECT_EQ(dump.seed, 9u);
  EXPECT_EQ(dump.reason.code, ErrorCode::kContractViolation);
  EXPECT_TRUE(dump.traces.traces() == mt.traces());

  // Deterministic seeds: the re-execution must fail identically, down to
  // the violation text.
  const CheckedRun rerun = run_replay(dump);
  ASSERT_FALSE(rerun.status.ok());
  EXPECT_EQ(rerun.status.error.code, dump.reason.code);
  EXPECT_EQ(rerun.status.error.message, dump.reason.message);
  EXPECT_EQ(rerun.status.error.proc, dump.reason.proc);
  EXPECT_EQ(rerun.status.error.time, dump.reason.time);
}

TEST(Replay, WatchdogTripWritesDumpAndReplayReproduces) {
  const MultiTrace mt = small_workload();
  const std::string spec = "INJECT(excessive-stall,RAND-PAR)";
  auto scheduler = make_scheduler_from_spec(spec, 9);
  EngineConfig ec;
  ec.cache_size = 16;
  ec.miss_cost = 4;
  ec.max_time = Time{1} << 20;  // the injected stall is 2^40 ticks
  ec.seed = 9;
  ec.scheduler_spec = spec;
  ec.replay_dump_path = ::testing::TempDir() + "ppg_watchdog.ppgreplay";

  const CheckedRun run = run_parallel_checked(mt, *scheduler, ec);
  ASSERT_FALSE(run.status.ok());
  EXPECT_EQ(run.status.error.code, ErrorCode::kWatchdogTimeout);
  ASSERT_FALSE(run.status.replay_dump_path.empty());

  const ReplayDump dump = load_replay_dump(run.status.replay_dump_path);
  EXPECT_EQ(dump.max_time, ec.max_time);
  const CheckedRun rerun = run_replay(dump);
  ASSERT_FALSE(rerun.status.ok());
  EXPECT_EQ(rerun.status.error.code, ErrorCode::kWatchdogTimeout);
}

TEST(Replay, DumpWriteFailureDoesNotMaskTheRunFailure) {
  const MultiTrace mt = small_workload();
  auto scheduler = make_scheduler_from_spec("INJECT(zero-height,DET-PAR)", 9);
  EngineConfig ec;
  ec.cache_size = 16;
  ec.miss_cost = 4;
  ec.replay_dump_path = "/nonexistent-ppg-dir/replay.ppgreplay";
  const CheckedRun run = run_parallel_checked(mt, *scheduler, ec);
  ASSERT_FALSE(run.status.ok());
  EXPECT_EQ(run.status.error.code, ErrorCode::kContractViolation);
  EXPECT_TRUE(run.status.replay_dump_path.empty());
}

TEST(Replay, CorruptDumpsAreRejectedStructurally) {
  std::stringstream buffer;
  write_replay_dump(buffer, sample_dump());
  const std::string bytes = buffer.str();

  {  // Bad magic.
    std::string bad = bytes;
    bad[0] = 'X';
    std::istringstream is(bad);
    EXPECT_THROW(read_replay_dump(is), PpgException);
  }
  {  // Truncation in the middle of the header and of the trace payload.
    for (const std::size_t cut : {std::size_t{10}, bytes.size() / 2}) {
      std::istringstream is(bytes.substr(0, cut));
      try {
        read_replay_dump(is);
        FAIL() << "accepted a dump truncated to " << cut << " bytes";
      } catch (const PpgException& e) {
        EXPECT_EQ(e.error().code, ErrorCode::kCorruptTrace);
      }
    }
  }
  {  // Oversized declared string length must not allocate.
    // The spec-length u32 sits right after magic(8) + version(4) + four
    // u64 fields (32).
    std::string bad = bytes;
    const std::size_t spec_len_at = 8 + 4 + 4 * 8;
    bad[spec_len_at + 0] = '\xff';
    bad[spec_len_at + 1] = '\xff';
    bad[spec_len_at + 2] = '\xff';
    bad[spec_len_at + 3] = '\xff';
    std::istringstream is(bad);
    try {
      read_replay_dump(is);
      FAIL() << "accepted an oversized string length";
    } catch (const PpgException& e) {
      EXPECT_EQ(e.error().code, ErrorCode::kCorruptTrace);
      EXPECT_NE(e.error().message.find("oversized"), std::string::npos);
    }
  }
}

}  // namespace
}  // namespace ppg
