#include <gtest/gtest.h>

#include "core/parallel_engine.hpp"
#include "core/rand_par.hpp"
#include "trace/generators.hpp"
#include "trace/workload.hpp"
#include "util/math_util.hpp"
#include "util/rng.hpp"

namespace ppg {
namespace {

MultiTrace mixed_workload(ProcId p, Height k, std::size_t len,
                          std::uint64_t seed = 1) {
  WorkloadParams params;
  params.num_procs = p;
  params.cache_size = k;
  params.requests_per_proc = len;
  params.seed = seed;
  return make_workload(WorkloadKind::kHeterogeneousMix, params);
}

EngineConfig config_for(Height k, Time s) {
  EngineConfig c;
  c.cache_size = k;
  c.miss_cost = s;
  return c;
}

TEST(RandPar, CompletesAllSequences) {
  const MultiTrace mt = mixed_workload(8, 32, 2000);
  auto scheduler = make_rand_par();
  const ParallelRunResult r = run_parallel(mt, *scheduler, config_for(32, 4));
  EXPECT_EQ(r.hits + r.misses, mt.total_requests());
  for (Time c : r.completion) EXPECT_GT(c, 0u);
}

TEST(RandPar, DeterministicGivenSeed) {
  const MultiTrace mt = mixed_workload(8, 32, 1500);
  RandParConfig config;
  config.seed = 99;
  auto s1 = make_rand_par(config);
  auto s2 = make_rand_par(config);
  const ParallelRunResult a = run_parallel(mt, *s1, config_for(32, 4));
  const ParallelRunResult b = run_parallel(mt, *s2, config_for(32, 4));
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.completion, b.completion);
}

TEST(RandPar, DifferentSeedsSampleDifferentHeights) {
  // The secondary-part heights are the randomized ingredient: two seeds
  // must produce different box-height sequences (makespan itself can
  // coincide when a height-insensitive straggler dominates).
  const MultiTrace mt = mixed_workload(8, 32, 1500);
  auto collect = [&](std::uint64_t seed) {
    RandParConfig config;
    config.seed = seed;
    auto scheduler = make_rand_par(config);
    EngineConfig c = config_for(32, 4);
    std::vector<Height> heights;
    c.on_box = [&](ProcId proc, const BoxAssignment& box) {
      if (proc == 0) heights.push_back(box.height);
    };
    run_parallel(mt, *scheduler, c);
    return heights;
  };
  EXPECT_NE(collect(1), collect(2));
}

TEST(RandPar, RespectsConstantAugmentation) {
  const MultiTrace mt = mixed_workload(16, 64, 2000);
  auto scheduler = make_rand_par();
  const ParallelRunResult r = run_parallel(mt, *scheduler, config_for(64, 4));
  // Primary: <= k across processors. Secondary: waves of floor(k/j) boxes
  // of height j (<= k) plus fillers (<= k). Constant augmentation overall.
  EXPECT_LE(r.effective_augmentation, 4.0);
}

TEST(RandPar, BoxHeightsLieOnLadder) {
  const MultiTrace mt = mixed_workload(8, 32, 800);
  auto scheduler = make_rand_par();
  EngineConfig c = config_for(32, 4);
  bool all_on_ladder = true;
  c.on_box = [&](ProcId, const BoxAssignment& box) {
    // Heights are powers of two between 1 and k (fillers use the chunk's
    // minimal height which is itself a ladder rung).
    if (!is_pow2(box.height) || box.height > 32) all_on_ladder = false;
  };
  run_parallel(mt, *scheduler, c);
  EXPECT_TRUE(all_on_ladder);
}

TEST(RandPar, StallModeAlsoCompletes) {
  RandParConfig config;
  config.stall_between_waves = true;
  const MultiTrace mt = mixed_workload(8, 32, 1000);
  auto scheduler = make_rand_par(config);
  const ParallelRunResult r = run_parallel(mt, *scheduler, config_for(32, 4));
  EXPECT_EQ(r.hits + r.misses, mt.total_requests());
  EXPECT_GT(r.total_stall, 0u);
}

TEST(RandPar, UsesLargeBoxesOccasionally) {
  const MultiTrace mt = mixed_workload(8, 64, 4000);
  auto scheduler = make_rand_par();
  EngineConfig c = config_for(64, 4);
  Height max_seen = 0;
  c.on_box = [&](ProcId, const BoxAssignment& box) {
    max_seen = std::max(max_seen, box.height);
  };
  run_parallel(mt, *scheduler, c);
  // With thousands of chunks, some secondary draw must exceed the minimum
  // height 64/8 = 8.
  EXPECT_GT(max_seen, 8u);
}

TEST(RandPar, PrimaryMultiplierScalesChunks) {
  // Sanity of the ablation knob: a larger primary multiplier still
  // completes and changes the schedule.
  RandParConfig config;
  config.primary_multiplier = 4;
  const MultiTrace mt = mixed_workload(8, 32, 1000);
  auto scheduler = make_rand_par(config);
  const ParallelRunResult r = run_parallel(mt, *scheduler, config_for(32, 4));
  EXPECT_EQ(r.hits + r.misses, mt.total_requests());
}

}  // namespace
}  // namespace ppg
