// Fuzzing the engine contract: ANY scheduler that emits structurally valid
// boxes must produce a run satisfying the conservation invariants,
// regardless of how pathological its allocation choices are.
#include <gtest/gtest.h>

#include "core/parallel_engine.hpp"
#include "opt/opt_bounds.hpp"
#include "trace/workload.hpp"
#include "util/math_util.hpp"
#include "util/rng.hpp"

namespace ppg {
namespace {

// Emits uniformly random power-of-two heights, random durations (possibly
// far from canonical), random deferred starts and random compartment
// continuation flags.
class ChaosScheduler final : public BoxScheduler {
 public:
  explicit ChaosScheduler(std::uint64_t seed) : rng_(seed) {}

  void start(const SchedulerContext& ctx, const EngineView&) override {
    ctx_ = ctx;
  }

  BoxAssignment next_box(ProcId, Time now, const EngineView&) override {
    const Height h_max =
        std::max<Height>(1, static_cast<Height>(pow2_floor(ctx_.cache_size)));
    const std::uint32_t rungs = ilog2_floor(h_max) + 1;
    const auto height = static_cast<Height>(
        std::uint64_t{1} << rng_.next_below(rungs));
    const Time defer = rng_.next_below(4) == 0 ? rng_.next_in(1, 17) : 0;
    const Time duration = rng_.next_in(1, ctx_.miss_cost * 8);
    const bool fresh = rng_.next_bool(0.5);
    return BoxAssignment{height, now + defer, now + defer + duration, fresh};
  }

  const char* name() const override { return "CHAOS"; }

 private:
  Rng rng_;
  SchedulerContext ctx_;
};

class EngineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineFuzz, ChaosSchedulerPreservesInvariants) {
  const std::uint64_t seed = GetParam();
  WorkloadParams wp;
  wp.num_procs = 6;
  wp.cache_size = 32;
  wp.requests_per_proc = 400;
  wp.seed = seed;
  for (const WorkloadKind kind :
       {WorkloadKind::kHeterogeneousMix, WorkloadKind::kZipf}) {
    const MultiTrace mt = make_workload(kind, wp);
    ChaosScheduler chaos(seed * 31 + 7);
    EngineConfig ec;
    ec.cache_size = 32;
    ec.miss_cost = 5;
    const ParallelRunResult r = run_parallel(mt, chaos, ec);

    EXPECT_EQ(r.hits + r.misses, mt.total_requests());
    Time max_c = 0;
    for (ProcId i = 0; i < mt.num_procs(); ++i) {
      EXPECT_GE(r.completion[i], mt.trace(i).size());
      max_c = std::max(max_c, r.completion[i]);
    }
    EXPECT_EQ(r.makespan, max_c);
    // Even chaos cannot beat the certified lower bound.
    OptBoundsConfig oc;
    oc.cache_size = 32;
    oc.miss_cost = 5;
    EXPECT_GE(r.makespan, compute_opt_bounds(mt, oc).lower_bound());
    // Impact accounting is consistent: impact <= peak * makespan and
    // every tick of busy time was inside some box.
    EXPECT_LE(r.total_impact,
              static_cast<Impact>(r.peak_concurrent_height) * r.makespan);
    EXPECT_GE(r.total_impact, r.hits + ec.miss_cost * r.misses);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// Degenerate scheduler: always the minimum box (height 1, duration exactly
// one miss). Worst-case event count; everything must still terminate and
// conserve.
class DripScheduler final : public BoxScheduler {
 public:
  void start(const SchedulerContext& ctx, const EngineView&) override {
    s_ = ctx.miss_cost;
  }
  BoxAssignment next_box(ProcId, Time now, const EngineView&) override {
    return BoxAssignment{1, now, now + s_};
  }
  const char* name() const override { return "DRIP"; }

 private:
  Time s_ = 1;
};

TEST(EngineFuzz, DripSchedulerTerminates) {
  WorkloadParams wp;
  wp.num_procs = 4;
  wp.cache_size = 16;
  wp.requests_per_proc = 300;
  const MultiTrace mt = make_workload(WorkloadKind::kZipf, wp);
  DripScheduler drip;
  EngineConfig ec;
  ec.cache_size = 16;
  ec.miss_cost = 3;
  const ParallelRunResult r = run_parallel(mt, drip, ec);
  EXPECT_EQ(r.hits + r.misses, mt.total_requests());
  // Height-1 compartments of one service each: every request misses.
  EXPECT_EQ(r.misses, mt.total_requests());
  EXPECT_EQ(r.peak_concurrent_height, 4u);
}

}  // namespace
}  // namespace ppg
