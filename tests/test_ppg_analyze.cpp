// Fixture + synthetic-graph suite for ppg_analyze, mirroring
// test_ppg_lint.cpp: every per-file rule must (a) fire on its violating
// fixture and on nothing else there, (b) stay silent on the clean twin, and
// (c) be silenced by the suppression comment; the two include-graph rules
// are driven by synthetic source sets (clean DAG, upward edge, cycle,
// undeclared layer, suppressed edge). The registry check at the bottom
// guarantees a rule cannot be added without joining one of the two
// families.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analyze.hpp"
#include "include_graph.hpp"

namespace ppg::analyze {
namespace {

using lint::Finding;
using lint::ScannedFile;

std::string read_fixture(const std::string& name) {
  std::ifstream in(std::string(PPG_LINT_FIXTURE_DIR) + "/" + name,
                   std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << name;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<Finding> analyze_fixture(const std::string& name) {
  const std::string text = read_fixture(name);
  ScannedFile scanned(name, text);
  return run_file_rules(scanned);
}

std::vector<Finding> analyze_snippet(const std::string& text,
                                     const std::string& path =
                                         "src/paging/snippet.hpp") {
  ScannedFile scanned(path, text);
  return run_file_rules(scanned);
}

// ---------------------------------------------------------------------------
// Per-file rule fixtures (trios, exactly like the ppg_lint suite).

struct AnalyzeRuleCase {
  const char* rule;
  const char* stem;
  const char* ext;

  friend void PrintTo(const AnalyzeRuleCase& c, std::ostream* os) {
    *os << c.rule;
  }
};

const AnalyzeRuleCase kCases[] = {
    {"guard-annotation", "guard_annotation", ".hpp"},
    {"pool-shared-state", "pool_shared_state", ".cpp"},
    {"static-mutable", "static_mutable", ".cpp"},
    {"unseeded-rng", "unseeded_rng", ".cpp"},
};

class AnalyzeRule : public ::testing::TestWithParam<AnalyzeRuleCase> {};

TEST_P(AnalyzeRule, FiresOnBadFixture) {
  const AnalyzeRuleCase& c = GetParam();
  const auto findings =
      analyze_fixture(std::string(c.stem) + "_bad" + c.ext);
  ASSERT_FALSE(findings.empty()) << c.rule << " did not fire";
  for (const Finding& f : findings)
    EXPECT_EQ(f.rule, c.rule) << "unexpected rule at line " << f.line << ": "
                              << f.message;
}

TEST_P(AnalyzeRule, SilentOnGoodFixture) {
  const AnalyzeRuleCase& c = GetParam();
  const auto findings =
      analyze_fixture(std::string(c.stem) + "_good" + c.ext);
  for (const Finding& f : findings)
    ADD_FAILURE() << c.stem << "_good" << c.ext << ":" << f.line << " ["
                  << f.rule << "] " << f.message;
}

TEST_P(AnalyzeRule, SuppressionSilencesBadFixture) {
  const AnalyzeRuleCase& c = GetParam();
  const auto findings =
      analyze_fixture(std::string(c.stem) + "_suppressed" + c.ext);
  for (const Finding& f : findings)
    ADD_FAILURE() << c.stem << "_suppressed" << c.ext << ":" << f.line
                  << " [" << f.rule << "] " << f.message;
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, AnalyzeRule, ::testing::ValuesIn(kCases),
    [](const ::testing::TestParamInfo<AnalyzeRuleCase>& param_info) {
      std::string name = param_info.param.rule;
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

// Every registry rule is exercised: per-file rules by a fixture trio, the
// two graph rules by the synthetic suites below. A rule added to the
// registry without a trio (or vice versa) is a test failure, not drift.
TEST(AnalyzeRegistry, EveryRuleHasACoveringSuite) {
  std::set<std::string> covered = {"layer-upward", "layer-cycle"};
  for (const AnalyzeRuleCase& c : kCases) covered.insert(c.rule);
  std::set<std::string> registered;
  for (const lint::RuleDesc& rule : all_rules()) registered.insert(rule.id);
  EXPECT_EQ(covered, registered);
}

// ---------------------------------------------------------------------------
// Scope-scanner precision on inline snippets.

TEST(AnalyzeScan, ConstGlobalsAndDeclarationsStaySilent) {
  const auto findings = analyze_snippet(
      "#pragma once\n"
      "namespace ppg {\n"
      "constexpr int kTable = 3;\n"
      "const char* const kName = \"x\";\n"
      "int pure_function(int x);\n"
      "struct Fwd;\n"
      "using Alias = int;\n"
      "}\n");
  EXPECT_TRUE(findings.empty());
}

TEST(AnalyzeScan, DefaultArgumentBraceInitIsNotAGlobal) {
  // Regression: `= std::uint64_t{1} << 32` inside a parameter list once
  // confused the brace classifier into reporting a namespace-scope global.
  const auto findings = analyze_snippet(
      "namespace ppg {\n"
      "int f(unsigned long long base = (unsigned long long){1} << 32);\n"
      "int g(int x = int{2});\n"
      "}\n");
  EXPECT_TRUE(findings.empty());
}

TEST(AnalyzeScan, StructInstanceAfterBodyIsAGlobal) {
  const auto findings = analyze_snippet(
      "namespace ppg {\n"
      "struct Config { int x = 0; };\n"
      "struct Registry {\n"
      "  int count = 0;\n"
      "} g_registry;\n"
      "}\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "static-mutable");
  EXPECT_NE(findings[0].message.find("g_registry"), std::string::npos);
}

TEST(AnalyzeScan, BraceInitializedGlobalIsFlagged) {
  const auto findings = analyze_snippet(
      "namespace ppg {\n"
      "std::atomic<int> g_flag{0};\n"
      "}\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "static-mutable");
  EXPECT_EQ(findings[0].line, 2u);
}

TEST(AnalyzeScan, CommentsAndStringsNeverFire) {
  const auto findings = analyze_snippet(
      "namespace ppg {\n"
      "// int g_commented = 0; static int also_commented = 1;\n"
      "const char* kSnippet = \"int g_quoted = 0;\";\n"
      "}\n");
  EXPECT_TRUE(findings.empty());
}

TEST(AnalyzeScan, MutexLockMemberIsNotAMutex) {
  // MutexLock holds a Mutex reference by design; a class holding only a
  // lock object (no mutex) owes no annotations.
  const auto findings = analyze_snippet(
      "#include <mutex>\n"
      "namespace ppg {\n"
      "class Guarded {\n"
      " public:\n"
      "  void run();\n"
      " private:\n"
      "  MutexLock lock_;\n"
      "  int value_ = 0;\n"
      "};\n"
      "}\n");
  EXPECT_TRUE(findings.empty());
}

TEST(AnalyzeScan, AnnotatedAndConstMembersSatisfyTheGuardRule) {
  const auto findings = analyze_snippet(
      "#include <mutex>\n"
      "namespace ppg {\n"
      "class Guarded {\n"
      " private:\n"
      "  std::mutex mutex_;\n"
      "  int hits_ PPG_GUARDED_BY(mutex_) = 0;\n"
      "  const int limit_ = 8;\n"
      "  int leaked_ = 0;\n"
      "};\n"
      "}\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "guard-annotation");
  EXPECT_EQ(findings[0].line, 8u);
  EXPECT_NE(findings[0].message.find("leaked_"), std::string::npos);
}

TEST(AnalyzeScan, DesignatedExemptionsApplyByPathSuffix) {
  const std::string global = "namespace ppg {\nint g_flag = 0;\n}\n";
  EXPECT_TRUE(
      analyze_snippet(global, "src/util/interrupt.cpp").empty());
  EXPECT_EQ(analyze_snippet(global, "src/util/other.cpp").size(), 1u);
}

// ---------------------------------------------------------------------------
// LayerSpec parsing.

TEST(LayerSpecTest, ParsesDeclarationOrderAndEdges) {
  const LayerSpec spec = LayerSpec::parse(
      "# comment\n"
      "layer util:\n"
      "layer trace: util\n"
      "layer core: trace util\n");
  EXPECT_EQ(spec.order(), (std::vector<std::string>{"util", "trace", "core"}));
  EXPECT_TRUE(spec.edge_allowed("core", "util"));
  EXPECT_TRUE(spec.edge_allowed("trace", "trace"));
  EXPECT_FALSE(spec.edge_allowed("util", "trace"));
  EXPECT_FALSE(spec.edge_allowed("util", "nope"));
}

TEST(LayerSpecTest, RejectsForwardAndSelfDependencies) {
  // Deps must be declared above: the property that keeps the spec acyclic
  // by construction.
  EXPECT_THROW(LayerSpec::parse("layer a: b\nlayer b:\n"),
               std::runtime_error);
  EXPECT_THROW(LayerSpec::parse("layer a: a\n"), std::runtime_error);
  EXPECT_THROW(LayerSpec::parse("layer a:\nlayer a:\n"), std::runtime_error);
  EXPECT_THROW(LayerSpec::parse("floor a:\n"), std::runtime_error);
  EXPECT_THROW(LayerSpec::parse("layer a\n"), std::runtime_error);
  EXPECT_THROW(LayerSpec::parse("# only comments\n"), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Include-graph rules on synthetic source sets.

LayerSpec two_layers() {
  return LayerSpec::parse("layer util:\nlayer trace: util\n");
}

TEST(IncludeGraph, CleanDagIsSilent) {
  const std::vector<SourceText> files = {
      {"util/a.hpp", "#pragma once\n"},
      {"trace/b.hpp", "#pragma once\n#include \"util/a.hpp\"\n"},
      {"trace/c.hpp", "#pragma once\n#include \"trace/b.hpp\"\n"
                      "#include <vector>\n#include \"gtest/gtest.h\"\n"},
  };
  EXPECT_TRUE(check_layering(files, two_layers()).empty());
}

TEST(IncludeGraph, UpwardEdgeIsFlaggedWithTheEdge) {
  const std::vector<SourceText> files = {
      {"util/a.hpp", "#pragma once\n#include \"trace/b.hpp\"\n"},
      {"trace/b.hpp", "#pragma once\n"},
  };
  const auto findings = check_layering(files, two_layers());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "util/a.hpp");
  EXPECT_EQ(findings[0].finding.rule, "layer-upward");
  EXPECT_EQ(findings[0].finding.line, 2u);
  EXPECT_NE(findings[0].finding.message.find("trace/b.hpp"),
            std::string::npos);
  EXPECT_NE(findings[0].finding.message.find("'util'"), std::string::npos);
}

TEST(IncludeGraph, CycleIsFlaggedOnceWithTheFullPath) {
  const std::vector<SourceText> files = {
      {"util/a.hpp", "#pragma once\n#include \"util/b.hpp\"\n"},
      {"util/b.hpp", "#pragma once\n#include \"util/c.hpp\"\n"},
      {"util/c.hpp", "#pragma once\n#include \"util/a.hpp\"\n"},
  };
  const auto findings = check_layering(files, two_layers());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].finding.rule, "layer-cycle");
  EXPECT_NE(
      findings[0].finding.message.find(
          "util/a.hpp -> util/b.hpp -> util/c.hpp -> util/a.hpp"),
      std::string::npos)
      << findings[0].finding.message;
}

TEST(IncludeGraph, UndeclaredLayerIsFlagged) {
  const std::vector<SourceText> files = {
      {"mystery/a.hpp", "#pragma once\n"},
  };
  const auto findings = check_layering(files, two_layers());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].finding.rule, "layer-upward");
  EXPECT_NE(findings[0].finding.message.find("'mystery'"),
            std::string::npos);
}

TEST(IncludeGraph, SelfAndDownwardEdgesAreAllowed) {
  const std::vector<SourceText> files = {
      {"util/a.hpp", "#pragma once\n"},
      {"util/b.hpp", "#pragma once\n#include \"util/a.hpp\"\n"},
      {"trace/c.hpp", "#pragma once\n#include \"util/b.hpp\"\n"},
  };
  EXPECT_TRUE(check_layering(files, two_layers()).empty());
}

// ---------------------------------------------------------------------------
// Whole-pipeline behaviour (what the CLI wraps).

TEST(AnalyzeSourceSet, CombinesGraphAndFileFindingsSorted) {
  const std::vector<SourceText> files = {
      {"util/a.hpp",
       "#pragma once\n#include \"trace/b.hpp\"\nnamespace ppg {\n"
       "int g_state = 0;\n}\n"},
      {"trace/b.hpp", "#pragma once\n"},
  };
  const auto findings = analyze_source_set(files, two_layers());
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].file, "util/a.hpp");
  EXPECT_EQ(findings[0].finding.rule, "layer-upward");
  EXPECT_EQ(findings[1].finding.rule, "static-mutable");
}

TEST(AnalyzeSourceSet, SuppressionSilencesAGraphEdge) {
  const std::vector<SourceText> files = {
      {"util/a.hpp",
       "#pragma once\n"
       "// ppg-lint: allow(layer-upward): transitional, tracked in #42\n"
       "#include \"trace/b.hpp\"\n"},
      {"trace/b.hpp", "#pragma once\n"},
  };
  EXPECT_TRUE(analyze_source_set(files, two_layers()).empty());
}

}  // namespace
}  // namespace ppg::analyze
