#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hpp"

namespace ppg {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_all();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> count{0};
  pool.submit([&count] { ++count; });
  pool.wait_all();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, WaitAllRethrowsFirstTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task boom"); });
  EXPECT_THROW(pool.wait_all(), std::runtime_error);
  // The pool stays usable after an error has been consumed.
  std::atomic<int> count{0};
  pool.submit([&count] { ++count; });
  pool.wait_all();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, WaitAllOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_all();  // nothing submitted — must not deadlock
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i)
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }  // ~ThreadPool joins after completing the queue
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, HardwareJobsIsPositive) {
  EXPECT_GE(ThreadPool::hardware_jobs(), 1u);
}

TEST(ThreadPool, ParallelForIndexCoversEveryIndexOnce) {
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{2},
                                 std::size_t{7}, std::size_t{64}}) {
    const std::size_t n = 1000;
    std::vector<std::atomic<int>> seen(n);
    parallel_for_index(jobs, n, [&seen](std::size_t i) {
      seen[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(seen[i].load(), 1) << "jobs=" << jobs << " i=" << i;
  }
}

TEST(ThreadPool, ParallelForIndexEmptyRangeIsNoop) {
  bool called = false;
  parallel_for_index(4, 0, [&called](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForIndexSerialPathPreservesOrder) {
  // jobs <= 1 must run inline, in index order, on the calling thread.
  std::vector<std::size_t> order;
  parallel_for_index(1, 5, [&order](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ParallelForIndexPropagatesException) {
  EXPECT_THROW(parallel_for_index(3, 100,
                                  [](std::size_t i) {
                                    if (i == 42)
                                      throw std::runtime_error("cell boom");
                                  }),
               std::runtime_error);
}

}  // namespace
}  // namespace ppg
