#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "util/interrupt.hpp"
#include "util/thread_pool.hpp"

namespace ppg {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_all();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> count{0};
  pool.submit([&count] { ++count; });
  pool.wait_all();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, WaitAllRethrowsFirstTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task boom"); });
  EXPECT_THROW(pool.wait_all(), std::runtime_error);
  // The pool stays usable after an error has been consumed.
  std::atomic<int> count{0};
  pool.submit([&count] { ++count; });
  pool.wait_all();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, WaitAllOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_all();  // nothing submitted — must not deadlock
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i)
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }  // ~ThreadPool joins after completing the queue
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, HardwareJobsIsPositive) {
  EXPECT_GE(ThreadPool::hardware_jobs(), 1u);
}

TEST(ThreadPool, ParallelForIndexCoversEveryIndexOnce) {
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{2},
                                 std::size_t{7}, std::size_t{64}}) {
    const std::size_t n = 1000;
    std::vector<std::atomic<int>> seen(n);
    parallel_for_index(jobs, n, [&seen](std::size_t i) {
      seen[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(seen[i].load(), 1) << "jobs=" << jobs << " i=" << i;
  }
}

TEST(ThreadPool, ParallelForIndexEmptyRangeIsNoop) {
  bool called = false;
  parallel_for_index(4, 0, [&called](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForIndexSerialPathPreservesOrder) {
  // jobs <= 1 must run inline, in index order, on the calling thread.
  std::vector<std::size_t> order;
  parallel_for_index(1, 5, [&order](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ParallelForIndexPropagatesException) {
  EXPECT_THROW(parallel_for_index(3, 100,
                                  [](std::size_t i) {
                                    if (i == 42)
                                      throw std::runtime_error("cell boom");
                                  }),
               std::runtime_error);
}

TEST(ThreadPool, RunBatchCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                              std::size_t{17}, std::size_t{500}}) {
    std::vector<std::atomic<int>> seen(n);
    pool.run_batch(n, [&seen](std::size_t i) {
      seen[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(seen[i].load(), 1) << "n=" << n << " i=" << i;
  }
}

TEST(ThreadPool, RunBatchIsReusableAcrossBatches) {
  // The engine runs one batch per simulated step on the same pool; each
  // batch must be a full barrier before the next begins.
  ThreadPool pool(4);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.run_batch(8, [&total](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 400);
}

TEST(ThreadPool, RunBatchIgnoresInterruptFlag) {
  // Unlike parallel_for_index, run_batch is the engine's intra-run
  // primitive: an interrupt must not carve a hole out of a simulated step
  // (drain-and-stop operates at the sweep-cell level).
  request_interrupt();
  ThreadPool pool(2);
  std::vector<std::atomic<int>> seen(64);
  pool.run_batch(64, [&seen](std::size_t i) {
    seen[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < 64; ++i) ASSERT_EQ(seen[i].load(), 1);
  clear_interrupt();
}

TEST(ThreadPool, RunBatchPropagatesTaskException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.run_batch(100,
                              [](std::size_t i) {
                                if (i == 42)
                                  throw std::runtime_error("batch boom");
                              }),
               std::runtime_error);
  // The pool stays usable after the error has been consumed.
  std::atomic<int> count{0};
  pool.run_batch(4, [&count](std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 4);
}

}  // namespace
}  // namespace ppg
