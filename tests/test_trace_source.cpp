// Cursor-contract and streaming-equivalence suite for the trace pipeline.
//
// Every lazy source must synthesize exactly the stream its materialized
// counterpart produces, and every cursor must honour the checkpoint/rewind
// contract: a rewound cursor replays a byte-identical suffix, and a
// checkpoint taken on one cursor restores correctly on any cursor of the
// same source.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "test_helpers.hpp"
#include "trace/adversarial.hpp"
#include "trace/generators.hpp"
#include "trace/stack_distance.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_source.hpp"
#include "trace/trace_spec.hpp"
#include "trace/trace_stats.hpp"
#include "trace/workload.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ppg {
namespace {

std::vector<PageId> drain(TraceCursor& cursor) {
  std::vector<PageId> out;
  while (!cursor.done()) {
    out.push_back(cursor.peek());
    cursor.advance();
  }
  return out;
}

/// Exercises the full cursor contract against the source's materialized
/// reference stream: peek repeatability, position bookkeeping, rewind from
/// every 7th position, and checkpoint portability across cursors.
void check_cursor_contract(const TraceSource& source) {
  const Trace reference = materialize(source);
  ASSERT_EQ(reference.size(), source.num_requests());

  // Pass 1: peek is repeatable and position tracks consumption.
  auto cursor = source.cursor();
  for (std::size_t i = 0; i < reference.size(); ++i) {
    ASSERT_FALSE(cursor->done());
    ASSERT_EQ(cursor->position(), i);
    const PageId first = cursor->peek();
    ASSERT_EQ(cursor->peek(), first) << "peek not repeatable at " << i;
    ASSERT_EQ(first, reference[i]);
    cursor->advance();
  }
  ASSERT_TRUE(cursor->done());
  ASSERT_EQ(cursor->position(), reference.size());

  // Pass 2: checkpoints taken mid-stream rewind to a byte-identical suffix,
  // both on the same cursor and on a fresh cursor of the same source.
  auto walker = source.cursor();
  for (std::size_t i = 0; i < reference.size(); ++i) {
    if (i % 7 == 0) {
      const CursorCheckpoint cp = walker->checkpoint();
      ASSERT_EQ(cp.position, i);

      // Run the walker a few steps ahead, then rewind it.
      for (std::size_t j = i; j < std::min(i + 5, reference.size()); ++j)
        walker->advance();
      walker->rewind(cp);
      ASSERT_EQ(walker->position(), i);
      if (i < reference.size()) {
        ASSERT_EQ(walker->peek(), reference[i]);
      }

      // Portability: the same checkpoint restores a fresh cursor.
      auto fresh = source.cursor();
      fresh->rewind(cp);
      for (std::size_t j = i; j < reference.size(); ++j) {
        ASSERT_EQ(fresh->peek(), reference[j]) << "diverged at " << j
                                               << " after rewind to " << i;
        fresh->advance();
      }
      ASSERT_TRUE(fresh->done());
    }
    walker->advance();
  }
}

TEST(TraceSource, VectorSourceContract) {
  const Trace t = test::make_trace({5, 6, 5, 7, 7, 6, 5, 8, 9, 5, 6});
  const auto view = VectorTraceSource::view(t);
  ASSERT_NE(view->materialized(), nullptr);
  EXPECT_EQ(*view->materialized(), t);
  check_cursor_contract(*view);
  EXPECT_EQ(materialize(*view), t);
}

TEST(TraceSource, OwningVectorSourceSharesStorage) {
  VectorTraceSource owning(test::make_trace({1, 2, 3}));
  auto c1 = owning.cursor();
  auto c2 = owning.cursor();
  EXPECT_EQ(drain(*c1), drain(*c2));
}

TEST(TraceSource, EmptySource) {
  const Trace empty;
  const auto view = VectorTraceSource::view(empty);
  EXPECT_EQ(view->num_requests(), 0u);
  auto cursor = view->cursor();
  EXPECT_TRUE(cursor->done());
  EXPECT_EQ(cursor->position(), 0u);
}

TEST(TraceSource, CyclicSourceMatchesMaterialized) {
  const auto source = gen::cyclic_source(7, 40);
  EXPECT_EQ(materialize(*source), gen::cyclic(7, 40));
  check_cursor_contract(*source);
}

TEST(TraceSource, PollutedCycleSourceMatchesMaterialized) {
  const auto source = gen::polluted_cycle_source(5, 60, 4, 10, 1000);
  EXPECT_EQ(materialize(*source), gen::polluted_cycle(5, 60, 4, 10, 1000));
  check_cursor_contract(*source);

  // pollute_every == 0: no pollution.
  const auto pure = gen::polluted_cycle_source(5, 20, 0);
  EXPECT_EQ(materialize(*pure), gen::polluted_cycle(5, 20, 0));
}

TEST(TraceSource, SingleUseSourceMatchesMaterialized) {
  const auto source = gen::single_use_source(30, 17);
  EXPECT_EQ(materialize(*source), gen::single_use(30, 17));
  check_cursor_contract(*source);
}

TEST(TraceSource, UniformSourceMatchesMaterializedAndAdvancesRng) {
  Rng rng(42);
  const auto source = gen::uniform_random_source(11, 50, rng);
  // The source snapshots rng; the materialized call consumes the same draws.
  const Trace reference = gen::uniform_random(11, 50, rng);
  EXPECT_EQ(materialize(*source), reference);
  check_cursor_contract(*source);

  // The materialized function advanced the caller's rng past its draws: a
  // second call produces a different trace, while the snapshot-backed
  // source keeps replaying the first.
  Rng rng2(42);
  Trace second = gen::uniform_random(11, 50, rng2);
  EXPECT_EQ(second, reference);
  second = gen::uniform_random(11, 50, rng2);
  EXPECT_NE(second, reference);
  EXPECT_EQ(materialize(*source), reference);
}

TEST(TraceSource, ZipfSourceMatchesMaterialized) {
  Rng rng(7);
  const auto source = gen::zipf_source(20, 80, 0.9, rng);
  EXPECT_EQ(materialize(*source), gen::zipf(20, 80, 0.9, rng));
  check_cursor_contract(*source);
}

TEST(TraceSource, PhasedWorkingSetSourceMatchesMaterialized) {
  const std::vector<gen::WorkingSetPhase> phases{
      {6, 25, true}, {3, 10, false}, {9, 30, true}};
  Rng rng(99);
  const auto source = gen::phased_working_set_source(phases, rng);
  EXPECT_EQ(materialize(*source), gen::phased_working_set(phases, rng));
  check_cursor_contract(*source);
}

TEST(TraceSource, SawtoothSourceMatchesMaterialized) {
  Rng rng(5);
  const auto source = gen::sawtooth_source(4, 30, 20, 3, rng);
  EXPECT_EQ(materialize(*source), gen::sawtooth(4, 30, 20, 3, rng));
  check_cursor_contract(*source);
}

TEST(TraceSource, ConcatSourceMatchesAppendedTraces) {
  Rng rng(3);
  const auto source = concat_source({gen::cyclic_source(4, 11),
                                     gen::single_use_source(7, 100),
                                     gen::uniform_random_source(5, 13, rng)});
  Trace expected = gen::cyclic(4, 11);
  expected.append(gen::single_use(7, 100));
  expected.append(gen::uniform_random(5, 13, rng));
  EXPECT_EQ(materialize(*source), expected);
  check_cursor_contract(*source);
}

TEST(TraceSource, ConcatSourceWithEmptyParts) {
  const auto source = concat_source(
      {gen::single_use_source(0), gen::cyclic_source(3, 5),
       gen::single_use_source(0)});
  EXPECT_EQ(materialize(*source), gen::cyclic(3, 5));
  check_cursor_contract(*source);
}

TEST(TraceSource, RebaseSourceMatchesRebaseToProc) {
  Rng rng(21);
  const Trace inner = gen::zipf(15, 70, 1.1, rng);
  Rng rng2(21);
  const auto source =
      rebase_source(gen::zipf_source(15, 70, 1.1, rng2), /*proc=*/3);
  EXPECT_EQ(materialize(*source), gen::rebase_to_proc(inner, 3));
  // Rewind must preserve the first-appearance id assignment: the remap
  // table is keyed by page, not by position, so a replayed suffix reuses
  // the ids assigned on the first pass.
  check_cursor_contract(*source);
}

TEST(TraceSource, MultiTraceSourceViewAndMaterialize) {
  MultiTrace mt;
  mt.add(test::make_trace({1, 2, 1}));
  mt.add(test::make_trace({9, 9, 8, 7}));
  const MultiTraceSource view = MultiTraceSource::view_of(mt);
  ASSERT_EQ(view.num_procs(), 2u);
  EXPECT_EQ(view.total_requests(), 7u);
  EXPECT_TRUE(view.materialize().traces() == mt.traces());
  EXPECT_EQ(view.source(1).num_requests(), 4u);
}

TEST(TraceSource, WorkloadSourceMatchesMakeWorkload) {
  for (const WorkloadKind kind : all_workload_kinds()) {
    WorkloadParams wp;
    wp.num_procs = 3;
    wp.cache_size = 12;
    wp.requests_per_proc = 300;
    wp.seed = 77;
    const MultiTrace expected = make_workload(kind, wp);
    const MultiTraceSource sources = make_workload_source(kind, wp);
    ASSERT_EQ(sources.num_procs(), expected.num_procs());
    for (ProcId i = 0; i < sources.num_procs(); ++i) {
      EXPECT_EQ(materialize(sources.source(i)), expected.trace(i))
          << workload_kind_name(kind) << " proc " << i;
    }
  }
}

TEST(TraceSource, WorkloadSourceCursorContract) {
  WorkloadParams wp;
  wp.num_procs = 2;
  wp.cache_size = 8;
  wp.requests_per_proc = 120;
  wp.seed = 5;
  const MultiTraceSource sources =
      make_workload_source(WorkloadKind::kHeterogeneousMix, wp);
  for (ProcId i = 0; i < sources.num_procs(); ++i)
    check_cursor_contract(sources.source(i));
}

TEST(TraceSource, AdversarialSourceMatchesInstance) {
  AdversarialParams ap;
  ap.ell = 2;
  ap.alpha = 0.02;
  ap.suffix_phase_factor = 1.0;
  const AdversarialInstance expected = make_adversarial_instance(ap);
  const AdversarialSourceInstance lazy = make_adversarial_source(ap);
  ASSERT_EQ(lazy.sources.num_procs(), expected.traces.num_procs());
  ASSERT_TRUE(lazy.info.size() == expected.info.size());
  for (ProcId i = 0; i < lazy.sources.num_procs(); ++i) {
    EXPECT_EQ(materialize(lazy.sources.source(i)), expected.traces.trace(i))
        << "proc " << i;
    EXPECT_EQ(lazy.info[i].prefixed, expected.info[i].prefixed);
    EXPECT_EQ(lazy.info[i].prefix_requests, expected.info[i].prefix_requests);
  }
  check_cursor_contract(lazy.sources.source(0));
}

TEST(TraceSource, WorkloadSpecRoundTrips) {
  WorkloadParams wp;
  wp.num_procs = 3;
  wp.cache_size = 24;
  wp.requests_per_proc = 200;
  wp.seed = 13;
  wp.miss_cost = 4;
  const std::string spec =
      workload_trace_spec(WorkloadKind::kPollutedCycles, wp);
  const MultiTraceSource rebuilt = make_source_from_trace_spec(spec);
  const MultiTrace expected =
      make_workload(WorkloadKind::kPollutedCycles, wp);
  EXPECT_TRUE(rebuilt.materialize().traces() == expected.traces());
}

TEST(TraceSource, AdversarialSpecRoundTrips) {
  AdversarialParams ap;
  ap.ell = 2;
  ap.alpha = 0.02;
  ap.suffix_phase_factor = 1.0;
  const std::string spec = adversarial_trace_spec(ap);
  const MultiTraceSource rebuilt = make_source_from_trace_spec(spec);
  const AdversarialInstance expected = make_adversarial_instance(ap);
  EXPECT_TRUE(rebuilt.materialize().traces() == expected.traces.traces());
}

TEST(TraceSource, MalformedSpecThrowsBadInput) {
  for (const char* bad :
       {"", "nonsense", "workload(kind=no-such-kind,p=2,k=8,n=10,seed=1,s=2)",
        "workload(p=2)", "workload(kind=zipf,p=2,k=8,n=10,seed=1,s=2",
        "adversarial(ell=not-a-number)"}) {
    try {
      make_source_from_trace_spec(bad);
      FAIL() << "accepted spec: '" << bad << "'";
    } catch (const PpgException& e) {
      EXPECT_EQ(e.error().code, ErrorCode::kBadInput) << bad;
    }
  }
}

TEST(TraceSource, FileSourceStreamsChunksAndRewinds) {
  MultiTrace mt;
  mt.add(gen::cyclic(5, 37));   // Deliberately not a multiple of the chunk.
  mt.add(gen::single_use(16));  // Exactly chunk-aligned length.
  mt.add(Trace{});              // Empty trace.
  const std::string path = testing::TempDir() + "ppg_file_source.ppgtrace";
  save_multitrace(path, mt);

  // Tiny chunks force many refills; behaviour must be invisible.
  const MultiTraceSource sources =
      open_multitrace_source(path, /*chunk_requests=*/4);
  ASSERT_EQ(sources.num_procs(), 3u);
  for (ProcId i = 0; i < 3; ++i) {
    EXPECT_EQ(materialize(sources.source(i)), mt.trace(i)) << "proc " << i;
    check_cursor_contract(sources.source(i));
  }
  EXPECT_TRUE(sources.materialize().traces() == mt.traces());
  std::remove(path.c_str());
}

// --- Bulk spans and read-ahead ---------------------------------------------

std::vector<PageId> drain_spans(TraceCursor& cursor, std::size_t span) {
  std::vector<PageId> out;
  std::vector<PageId> buffer(span);
  for (;;) {
    const std::size_t n = cursor.next_span(buffer.data(), span);
    if (n == 0) break;
    out.insert(out.end(), buffer.begin(),
               buffer.begin() + static_cast<std::ptrdiff_t>(n));
  }
  return out;
}

TEST(TraceSource, NextSpanMatchesPeekAdvance) {
  const std::vector<std::shared_ptr<const TraceSource>> sources = {
      std::make_shared<VectorTraceSource>(
          test::make_trace({5, 6, 5, 7, 7, 6, 5, 8, 9, 5, 6})),
      gen::cyclic_source(5, 37),
      gen::zipf_source(64, 333, 1.1, Rng(17)),
      gen::sawtooth_source(4, 24, 50, 4, Rng(29)),
      gen::polluted_cycle_source(6, 100, 7),
      rebase_source(gen::zipf_source(15, 70, 1.1, Rng(21)), /*proc=*/3),
      concat_source({gen::cyclic_source(3, 10), gen::single_use_source(7),
                     gen::cyclic_source(4, 5)}),
  };
  for (const auto& source : sources) {
    const Trace reference = materialize(*source);
    // Odd span sizes cross every internal boundary (chunk, segment).
    for (const std::size_t span : {std::size_t{1}, std::size_t{3},
                                   std::size_t{16}, std::size_t{1000}}) {
      auto cursor = source->cursor();
      EXPECT_EQ(drain_spans(*cursor, span), reference.requests())
          << "span=" << span;
      EXPECT_TRUE(cursor->done());
      EXPECT_EQ(cursor->position(), reference.size());
    }
  }
}

TEST(TraceSource, NextSpanLeavesIdenticalCursorState) {
  // A cursor advanced by next_span must be indistinguishable — position,
  // checkpoint words (incl. RNG state), and remaining stream — from one
  // advanced request by request.
  const auto source = gen::zipf_source(64, 200, 1.1, Rng(23));
  auto bulk = source->cursor();
  auto stepper = source->cursor();
  std::vector<PageId> buffer(13);
  const std::size_t n = bulk->next_span(buffer.data(), buffer.size());
  ASSERT_EQ(n, buffer.size());
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(stepper->peek(), buffer[i]);
    stepper->advance();
  }
  const CursorCheckpoint a = bulk->checkpoint();
  const CursorCheckpoint b = stepper->checkpoint();
  EXPECT_EQ(a.position, b.position);
  EXPECT_EQ(a.words, b.words);
  EXPECT_EQ(drain(*bulk), drain(*stepper));
}

TEST(TraceSource, NextSpanAfterPeekEmitsPeekedRequestFirst) {
  // Decorators that cache the peeked request (rebase) must hand it out at
  // the head of the next bulk span, not drop or double-emit it.
  const auto source =
      rebase_source(gen::zipf_source(15, 70, 1.1, Rng(21)), /*proc=*/3);
  const Trace reference = materialize(*source);
  auto cursor = source->cursor();
  std::vector<PageId> got;
  std::vector<PageId> buffer(9);
  while (!cursor->done()) {
    const PageId peeked = cursor->peek();
    const std::size_t n = cursor->next_span(buffer.data(), buffer.size());
    ASSERT_GE(n, 1u);
    ASSERT_EQ(buffer[0], peeked);
    got.insert(got.end(), buffer.begin(),
               buffer.begin() + static_cast<std::ptrdiff_t>(n));
  }
  EXPECT_EQ(got, reference.requests());
}

TEST(TraceSource, ReadAheadSourceHonoursCursorContract) {
  // Chunk sizes around the stream length force every buffer shape: many
  // swaps, one partial chunk, and a single oversized chunk.
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{3},
                                  std::size_t{16}, std::size_t{4096}}) {
    const auto inner = gen::zipf_source(32, 100, 1.2, Rng(9));
    const auto decorated = read_ahead_source(inner, chunk);
    ASSERT_EQ(decorated->num_requests(), inner->num_requests());
    EXPECT_EQ(materialize(*decorated), materialize(*inner))
        << "chunk=" << chunk;
    check_cursor_contract(*decorated);
  }
}

TEST(TraceSource, ReadAheadSourceBulkAndConcatCompose) {
  const auto inner = concat_source(
      {gen::cyclic_source(5, 37), gen::single_use_source(16)});
  const auto decorated = read_ahead_source(inner, 8);
  const Trace reference = materialize(*inner);
  auto cursor = decorated->cursor();
  EXPECT_EQ(drain_spans(*cursor, 11), reference.requests());
}

// --- Streaming one-pass consumers -----------------------------------------

TEST(OnlineStackDistanceTest, MatchesNaiveWithCompaction) {
  // 2000 requests over 40 pages: the compact slot space (~2m+2 = 82 slots)
  // overflows every ~42 accesses, exercising renumbering continuously.
  Rng rng(31);
  const Trace trace = gen::zipf(40, 2000, 0.8, rng);
  const std::vector<std::uint64_t> expected = stack_distances_naive(trace);
  OnlineStackDistance online;
  for (std::size_t i = 0; i < trace.size(); ++i)
    ASSERT_EQ(online.access(trace[i]), expected[i]) << "request " << i;
  EXPECT_EQ(online.num_distinct(), trace.distinct_pages());
}

TEST(StreamingConsumers, ProfileStatsAndWorkingSetMatchMaterialized) {
  Rng rng(17);
  const auto source = gen::sawtooth_source(6, 40, 50, 4, rng);
  const Trace trace = materialize(*source);

  {
    auto cursor = source->cursor();
    const StackDistanceProfile streamed =
        stack_distance_profile(*cursor, /*max_tracked=*/64);
    const StackDistanceProfile direct = stack_distance_profile(trace, 64);
    EXPECT_EQ(streamed.counts, direct.counts);
    EXPECT_EQ(streamed.cold_misses, direct.cold_misses);
    EXPECT_EQ(streamed.far, direct.far);
  }
  {
    auto cursor = source->cursor();
    const TraceStats streamed = compute_trace_stats(*cursor, 8);
    const TraceStats direct = compute_trace_stats(trace, 8);
    EXPECT_EQ(streamed.num_requests, direct.num_requests);
    EXPECT_EQ(streamed.distinct_pages, direct.distinct_pages);
    EXPECT_EQ(streamed.median_stack_distance, direct.median_stack_distance);
    EXPECT_EQ(streamed.lru_fault_curve, direct.lru_fault_curve);
  }
  {
    auto cursor = source->cursor();
    EXPECT_EQ(working_set_profile(*cursor, 32),
              working_set_profile(trace, 32));
  }
}

}  // namespace
}  // namespace ppg
