// Structured error type: formatting, context fields, exception carrier.
#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ppg {
namespace {

TEST(Error, DefaultIsOk) {
  Error e;
  EXPECT_TRUE(e.ok());
  EXPECT_TRUE(RunStatus::success().ok());
}

TEST(Error, ToStringCarriesCodeAndMessage) {
  Error e;
  e.code = ErrorCode::kCorruptTrace;
  e.message = "bad magic";
  EXPECT_EQ(e.to_string(), "[corrupt-trace] bad magic");
}

TEST(Error, ToStringAppendsContextFields) {
  Error e;
  e.code = ErrorCode::kContractViolation;
  e.message = "zero-height box";
  e.proc = 3;
  e.time = 42;
  EXPECT_EQ(e.to_string(), "[contract-violation] zero-height box (proc 3, t=42)");

  Error io;
  io.code = ErrorCode::kCorruptTrace;
  io.message = "truncated";
  io.byte_offset = 17;
  io.path = "x.bin";
  EXPECT_EQ(io.to_string(), "[corrupt-trace] truncated (offset 17, file x.bin)");
}

TEST(Error, EveryCodeHasAName) {
  for (const ErrorCode code :
       {ErrorCode::kOk, ErrorCode::kBadInput, ErrorCode::kCorruptTrace,
        ErrorCode::kIoError, ErrorCode::kContractViolation,
        ErrorCode::kWatchdogTimeout, ErrorCode::kInternal,
        ErrorCode::kCellBudgetExceeded, ErrorCode::kResourceExhausted,
        ErrorCode::kInterrupted, ErrorCode::kJournalLocked,
        ErrorCode::kTenantBudgetExceeded,
        ErrorCode::kTenantDeadlineExceeded}) {
    EXPECT_STRNE(error_code_name(code), "unknown");
  }
}

TEST(Error, ExceptionCarriesErrorAndDerivesRuntimeError) {
  try {
    throw_error(ErrorCode::kIoError, "cannot open", kNoOffset, "f.bin");
    FAIL() << "throw_error did not throw";
  } catch (const std::runtime_error& e) {  // legacy handlers keep working
    const auto* ppg = dynamic_cast<const PpgException*>(&e);
    ASSERT_NE(ppg, nullptr);
    EXPECT_EQ(ppg->error().code, ErrorCode::kIoError);
    EXPECT_EQ(ppg->error().path, "f.bin");
    EXPECT_NE(std::string(e.what()).find("cannot open"), std::string::npos);
  }
}

TEST(RunStatus, FailureCarriesError) {
  Error e;
  e.code = ErrorCode::kWatchdogTimeout;
  e.message = "too slow";
  const RunStatus status = RunStatus::failure(e);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.error.code, ErrorCode::kWatchdogTimeout);
  EXPECT_TRUE(status.replay_dump_path.empty());
}

}  // namespace
}  // namespace ppg
