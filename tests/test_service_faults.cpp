// Fault isolation, end to end: the trace-layer fault decorator produces
// exactly its specified hostile stream; the engine quarantines exactly the
// offending processor (runner fault, per-processor budget, or deadline)
// while every other processor's schedule stays byte-identical; and the
// service surfaces quarantines as structured TenantOutcomes, sheds load
// under its admission policies, drains completed work past a run-wide
// budget breach, and reports health — all deterministic at every
// engine_threads value.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/parallel_engine.hpp"
#include "core/scheduler_factory.hpp"
#include "service/paging_service.hpp"
#include "trace/fault_source.hpp"
#include "trace/generators.hpp"
#include "trace/trace_spec.hpp"
#include "util/thread_pool.hpp"

namespace ppg {
namespace {

std::shared_ptr<const TraceSource> faulty(
    std::shared_ptr<const TraceSource> inner, TraceFaultClass fault,
    std::uint64_t at) {
  TraceFaultSpec spec;
  spec.fault = fault;
  spec.at = at;
  return make_fault_injecting_source(std::move(inner), spec);
}

// --- Trace-layer decorator ------------------------------------------------

TEST(FaultInjectionTraceTest, ParseAndFormatRoundTrip) {
  const auto fail = parse_trace_fault("fail@120");
  ASSERT_TRUE(fail.has_value());
  EXPECT_EQ(fail->fault, TraceFaultClass::kFail);
  EXPECT_EQ(fail->at, 120u);
  EXPECT_EQ(trace_fault_to_string(*fail), "fail@120");

  for (const char* text :
       {"hostile-page@7", "torn-span@0", "stall@999999"}) {
    const auto spec = parse_trace_fault(text);
    ASSERT_TRUE(spec.has_value()) << text;
    EXPECT_EQ(trace_fault_to_string(*spec), text);
  }
  for (const char* bad : {"", "fail", "fail@", "fail@x", "@3", "melt@3",
                          "fail@3x", "FAIL@3"}) {
    EXPECT_FALSE(parse_trace_fault(bad).has_value()) << bad;
  }
}

TEST(FaultInjectionTraceTest, FailThrowsExactlyAtPosition) {
  const auto source = faulty(gen::cyclic_source(4, 100),
                             TraceFaultClass::kFail, 10);
  EXPECT_EQ(source->num_requests(), 100u);
  const auto cursor = source->cursor();
  for (int i = 0; i < 10; ++i) {
    ASSERT_FALSE(cursor->done());
    cursor->peek();
    cursor->advance();
  }
  EXPECT_EQ(cursor->position(), 10u);
  EXPECT_FALSE(cursor->done());
  try {
    cursor->peek();
    FAIL() << "peek at the fault position must throw";
  } catch (const PpgException& e) {
    EXPECT_EQ(e.error().code, ErrorCode::kCorruptTrace);
    EXPECT_EQ(e.error().byte_offset, 10u);
  }

  // Bulk pulls cap at the fault site, then throw.
  const auto bulk = source->cursor();
  PageId buffer[64];
  EXPECT_EQ(bulk->next_span(buffer, 64), 10u);
  EXPECT_THROW(bulk->next_span(buffer, 64), PpgException);
}

TEST(FaultInjectionTraceTest, HostilePageReplacesOneRequest) {
  const auto source = faulty(gen::cyclic_source(4, 20),
                             TraceFaultClass::kHostilePage, 7);
  // Single-step path.
  const auto cursor = source->cursor();
  for (int i = 0; i < 7; ++i) cursor->advance();
  EXPECT_EQ(cursor->peek(), kInvalidPage);
  cursor->advance();
  EXPECT_NE(cursor->peek(), kInvalidPage);

  // Bulk path: the sentinel lands at the same offset.
  const auto bulk = source->cursor();
  PageId buffer[20];
  std::size_t got = 0;
  while (got < 20) got += bulk->next_span(buffer + got, 20 - got);
  for (std::size_t i = 0; i < 20; ++i)
    EXPECT_EQ(buffer[i] == kInvalidPage, i == 7) << "position " << i;
}

TEST(FaultInjectionTraceTest, TornSpanEndsEarlyButDeclaredLengthLies) {
  const auto source = faulty(gen::cyclic_source(4, 50),
                             TraceFaultClass::kTornSpan, 30);
  EXPECT_EQ(source->num_requests(), 50u);  // The lie.
  const auto cursor = source->cursor();
  PageId buffer[64];
  std::size_t total = 0, n = 0;
  while ((n = cursor->next_span(buffer, 64)) != 0) total += n;
  EXPECT_EQ(total, 30u);
  EXPECT_TRUE(cursor->done());
}

TEST(FaultInjectionTraceTest, StallProducesNothingAndNeverFinishes) {
  const auto source = faulty(gen::cyclic_source(4, 50),
                             TraceFaultClass::kStall, 5);
  const auto cursor = source->cursor();
  PageId buffer[64];
  EXPECT_EQ(cursor->next_span(buffer, 64), 5u);
  EXPECT_EQ(cursor->next_span(buffer, 64), 0u);
  EXPECT_EQ(cursor->next_span(buffer, 64), 0u);
  EXPECT_FALSE(cursor->done());  // The livelock: stalled, not finished.
  EXPECT_EQ(cursor->position(), 5u);
}

TEST(FaultInjectionTraceTest, FaultAtOrPastEndIsHealthy) {
  const auto clean = gen::cyclic_source(4, 20);
  for (const TraceFaultClass fault :
       {TraceFaultClass::kFail, TraceFaultClass::kHostilePage,
        TraceFaultClass::kTornSpan, TraceFaultClass::kStall}) {
    const auto source = faulty(clean, fault, 20);
    const auto cursor = source->cursor();
    const auto want = clean->cursor();
    while (!want->done()) {
      ASSERT_FALSE(cursor->done());
      EXPECT_EQ(cursor->peek(), want->peek());
      cursor->advance();
      want->advance();
    }
    EXPECT_TRUE(cursor->done());
  }
}

TEST(FaultInjectionTraceTest, CheckpointRewindReplaysTheFault) {
  const auto source = faulty(gen::cyclic_source(4, 40),
                             TraceFaultClass::kHostilePage, 9);
  const auto cursor = source->cursor();
  for (int i = 0; i < 5; ++i) cursor->advance();
  const CursorCheckpoint cp = cursor->checkpoint();
  std::vector<PageId> first, second;
  while (!cursor->done()) {
    first.push_back(cursor->peek());
    cursor->advance();
  }
  cursor->rewind(cp);
  EXPECT_EQ(cursor->position(), 5u);
  while (!cursor->done()) {
    second.push_back(cursor->peek());
    cursor->advance();
  }
  EXPECT_EQ(first, second);
  EXPECT_EQ(first[9 - 5], kInvalidPage);
}

TEST(FaultInjectionTraceTest, SpecRegistryWrapsEveryProcessor) {
  const MultiTraceSource sources = make_source_from_trace_spec(
      "INJECT-TRACE(fail@10,"
      "workload(kind=hetero-mix,p=2,k=16,n=200,seed=3,s=4))");
  ASSERT_EQ(sources.num_procs(), 2);
  for (ProcId i = 0; i < 2; ++i) {
    // The decorator hides any materialized fast path: hostile input must
    // flow through the streaming validation.
    EXPECT_EQ(sources.source(i).materialized(), nullptr);
    const auto cursor = sources.source(i).cursor();
    PageId buffer[64];
    EXPECT_EQ(cursor->next_span(buffer, 64), 10u);
    EXPECT_THROW(cursor->next_span(buffer, 64), PpgException);
  }

  for (const char* bad :
       {"INJECT-TRACE(fail@10)",  // No inner spec.
        "INJECT-TRACE(melt@10,workload(kind=hetero-mix,p=1,k=8,n=9,seed=1,s=2))",
        "INJECT-TRACE(fail@,workload(kind=hetero-mix,p=1,k=8,n=9,seed=1,s=2))"}) {
    EXPECT_THROW(make_source_from_trace_spec(bad), PpgException) << bad;
  }
}

// --- Engine containment ---------------------------------------------------

struct SteppedRun {
  std::vector<StepCompletion> completions;
  CheckedRun checked;
};

SteppedRun run_stepper(const MultiTraceSource& sources, BoxScheduler& sched,
                       const EngineConfig& config) {
  EngineStepper stepper(sched, config);
  for (ProcId i = 0; i < sources.num_procs(); ++i)
    stepper.add_processor(sources.source_ptr(i));
  stepper.start();
  SteppedRun out;
  while (!stepper.done()) {
    stepper.step();
    for (const StepCompletion& c : stepper.last_completions())
      out.completions.push_back(c);
  }
  out.checked = stepper.finish();
  return out;
}

MultiTraceSource three_tenants() {
  MultiTraceSource sources;
  sources.add(gen::cyclic_source(8, 180));
  sources.add(gen::cyclic_source(6, 240));
  sources.add(gen::cyclic_source(10, 140));
  return sources;
}

EngineConfig contained_config() {
  EngineConfig ec;
  ec.cache_size = 16;
  ec.miss_cost = 2;
  ec.contain_proc_failures = true;
  return ec;
}

const StepCompletion& completion_of(const SteppedRun& run, ProcId proc) {
  for (const StepCompletion& c : run.completions)
    if (c.proc == proc) return c;
  ADD_FAILURE() << "no completion for proc " << proc;
  static const StepCompletion kNone{};
  return kNone;
}

TEST(EngineStepperQuarantineTest, ContainedFaultQuarantinesOnlyThatProc) {
  const auto clean_sched = make_scheduler(SchedulerKind::kStatic, 0);
  const SteppedRun clean =
      run_stepper(three_tenants(), *clean_sched, contained_config());
  ASSERT_TRUE(clean.checked.status.ok());

  MultiTraceSource mixed = three_tenants();
  MultiTraceSource wrapped;
  wrapped.add(mixed.source_ptr(0));
  wrapped.add(faulty(mixed.source_ptr(1), TraceFaultClass::kFail, 50));
  wrapped.add(mixed.source_ptr(2));
  const auto sched = make_scheduler(SchedulerKind::kStatic, 0);
  const SteppedRun run = run_stepper(wrapped, *sched, contained_config());

  // The run as a whole is healthy: containment means no run-wide failure.
  ASSERT_TRUE(run.checked.status.ok());
  const StepCompletion& bad = completion_of(run, 1);
  EXPECT_TRUE(bad.quarantined);
  EXPECT_FALSE(bad.departed);
  EXPECT_EQ(bad.error.code, ErrorCode::kCorruptTrace);
  EXPECT_EQ(bad.error.proc, 1);

  // The healthy processors' completions are byte-identical to the clean
  // run: under STATIC the quarantine is invisible to them.
  for (const ProcId proc : {ProcId{0}, ProcId{2}}) {
    const StepCompletion& got = completion_of(run, proc);
    const StepCompletion& want = completion_of(clean, proc);
    EXPECT_EQ(got.time, want.time) << "proc " << proc;
    EXPECT_FALSE(got.quarantined);
    EXPECT_FALSE(got.departed);
  }
}

TEST(EngineStepperQuarantineTest, UncontainedFaultFailsTheWholeRun) {
  MultiTraceSource mixed = three_tenants();
  MultiTraceSource wrapped;
  wrapped.add(mixed.source_ptr(0));
  wrapped.add(faulty(mixed.source_ptr(1), TraceFaultClass::kFail, 50));
  wrapped.add(mixed.source_ptr(2));
  EngineConfig ec = contained_config();
  ec.contain_proc_failures = false;
  const auto sched = make_scheduler(SchedulerKind::kStatic, 0);
  const SteppedRun run = run_stepper(wrapped, *sched, ec);
  ASSERT_FALSE(run.checked.status.ok());
  EXPECT_EQ(run.checked.status.error.code, ErrorCode::kCorruptTrace);
  EXPECT_EQ(run.checked.status.error.proc, 1);
}

TEST(EngineStepperQuarantineTest, HostilePageIsRejectedByTheSpanScan) {
  MultiTraceSource wrapped;
  wrapped.add(faulty(gen::cyclic_source(8, 100),
                     TraceFaultClass::kHostilePage, 30));
  const auto sched = make_scheduler(SchedulerKind::kStatic, 0);
  const SteppedRun run = run_stepper(wrapped, *sched, contained_config());
  ASSERT_TRUE(run.checked.status.ok());
  const StepCompletion& bad = completion_of(run, 0);
  EXPECT_TRUE(bad.quarantined);
  EXPECT_EQ(bad.error.code, ErrorCode::kCorruptTrace);
  EXPECT_EQ(bad.error.byte_offset, 30u);
}

TEST(EngineStepperQuarantineTest, BoxBudgetEvictsAStalledProcessor) {
  // A stalled source never finishes and never throws: only the
  // per-processor box budget can evict it. Budget/deadline watchdogs are
  // active even without contain_proc_failures.
  MultiTraceSource sources;
  sources.add(faulty(gen::cyclic_source(8, 100), TraceFaultClass::kStall, 4));
  sources.add(gen::cyclic_source(8, 60));
  EngineConfig ec;
  ec.cache_size = 16;
  ec.miss_cost = 2;
  ec.proc_event_budget = 5;
  const auto sched = make_scheduler(SchedulerKind::kStatic, 0);
  const SteppedRun run = run_stepper(sources, *sched, ec);
  ASSERT_TRUE(run.checked.status.ok());
  const StepCompletion& stalled = completion_of(run, 0);
  EXPECT_TRUE(stalled.quarantined);
  EXPECT_EQ(stalled.error.code, ErrorCode::kTenantBudgetExceeded);
  EXPECT_FALSE(completion_of(run, 1).quarantined);
}

TEST(EngineStepperQuarantineTest, DeadlineEvictsASlowProcessor) {
  MultiTraceSource sources;
  sources.add(faulty(gen::cyclic_source(8, 100), TraceFaultClass::kStall, 4));
  EngineConfig ec;
  ec.cache_size = 16;
  ec.miss_cost = 2;
  ec.proc_deadline = 200;
  const auto sched = make_scheduler(SchedulerKind::kStatic, 0);
  const SteppedRun run = run_stepper(sources, *sched, ec);
  ASSERT_TRUE(run.checked.status.ok());
  const StepCompletion& slow = completion_of(run, 0);
  EXPECT_TRUE(slow.quarantined);
  EXPECT_EQ(slow.error.code, ErrorCode::kTenantDeadlineExceeded);
  EXPECT_GE(slow.time, Time{200});
}

TEST(EngineStepperQuarantineTest, QuarantineIsIdenticalAtEveryThreadCount) {
  const auto run_at = [](std::size_t threads) {
    MultiTraceSource mixed = three_tenants();
    MultiTraceSource wrapped;
    wrapped.add(faulty(mixed.source_ptr(0), TraceFaultClass::kHostilePage, 40));
    wrapped.add(faulty(mixed.source_ptr(1), TraceFaultClass::kFail, 50));
    wrapped.add(mixed.source_ptr(2));
    EngineConfig ec = contained_config();
    ec.engine_threads = threads;
    const auto sched = make_scheduler(SchedulerKind::kStatic, 0);
    return run_stepper(wrapped, *sched, ec);
  };
  const SteppedRun want = run_at(0);
  ASSERT_TRUE(want.checked.status.ok());
  for (const std::size_t threads :
       {std::size_t{2}, ThreadPool::hardware_jobs()}) {
    const SteppedRun got = run_at(threads);
    ASSERT_TRUE(got.checked.status.ok());
    ASSERT_EQ(got.completions.size(), want.completions.size());
    for (std::size_t i = 0; i < want.completions.size(); ++i) {
      const StepCompletion& a = want.completions[i];
      const StepCompletion& b = got.completions[i];
      EXPECT_EQ(a.proc, b.proc) << "threads=" << threads << " i=" << i;
      EXPECT_EQ(a.time, b.time) << "threads=" << threads << " i=" << i;
      EXPECT_EQ(a.departed, b.departed);
      EXPECT_EQ(a.quarantined, b.quarantined);
      EXPECT_EQ(a.error.code, b.error.code);
      EXPECT_EQ(a.error.byte_offset, b.error.byte_offset);
    }
    EXPECT_EQ(got.checked.result.makespan, want.checked.result.makespan);
    EXPECT_EQ(got.checked.events_consumed, want.checked.events_consumed);
  }
}

// --- Service-level isolation, shedding, health ----------------------------

ServiceConfig small_service_config() {
  ServiceConfig sc;
  sc.cache_size = 16;
  sc.miss_cost = 4;
  return sc;
}

TEST(PagingServiceQuarantineTest, QuarantineSurfacesStructuredOutcome) {
  const auto sched = make_scheduler(SchedulerKind::kStatic, 0);
  PagingService service(*sched, small_service_config());
  const auto healthy = service.submit(gen::cyclic_source(8, 120), 0);
  const auto bad =
      service.submit(faulty(gen::cyclic_source(8, 120),
                            TraceFaultClass::kFail, 30),
                     0);
  ASSERT_TRUE(healthy && bad);
  service.run_until_idle();
  ASSERT_TRUE(service.status().ok());

  const TenantOutcome out = service.outcome(*bad);
  EXPECT_EQ(out.terminal, TenantTerminal::kQuarantined);
  EXPECT_FALSE(out.departed);
  EXPECT_EQ(out.error.code, ErrorCode::kCorruptTrace);
  EXPECT_EQ(service.outcome(*healthy).terminal, TenantTerminal::kCompleted);
  EXPECT_TRUE(service.outcome(*healthy).error.ok());

  const ServiceMetrics m = service.metrics();
  EXPECT_EQ(m.completed, 1u);
  EXPECT_EQ(m.quarantined, 1u);
  EXPECT_EQ(m.departed, 0u);
  ASSERT_EQ(m.quarantine_codes.size(), 1u);
  EXPECT_EQ(m.quarantine_codes[0].first, ErrorCode::kCorruptTrace);
  EXPECT_EQ(m.quarantine_codes[0].second, 1u);
}

TEST(PagingServiceQuarantineTest, TenantBudgetEvictsARunawayTenant) {
  const auto sched = make_scheduler(SchedulerKind::kStatic, 0);
  ServiceConfig sc = small_service_config();
  sc.tenant_event_budget = 6;
  PagingService service(*sched, sc);
  const auto runaway = service.submit(
      faulty(gen::cyclic_source(8, 500), TraceFaultClass::kStall, 3), 0);
  const auto healthy = service.submit(gen::cyclic_source(8, 80), 0);
  ASSERT_TRUE(runaway && healthy);
  service.run_until_idle();
  ASSERT_TRUE(service.status().ok());
  EXPECT_EQ(service.outcome(*runaway).terminal, TenantTerminal::kQuarantined);
  EXPECT_EQ(service.outcome(*runaway).error.code,
            ErrorCode::kTenantBudgetExceeded);
  EXPECT_EQ(service.outcome(*healthy).terminal, TenantTerminal::kCompleted);
}

TEST(PagingServiceQuarantineTest, TenantDeadlineEvictsASlowTenant) {
  const auto sched = make_scheduler(SchedulerKind::kStatic, 0);
  ServiceConfig sc = small_service_config();
  sc.tenant_deadline = 150;
  PagingService service(*sched, sc);
  const auto slow = service.submit(
      faulty(gen::cyclic_source(8, 500), TraceFaultClass::kStall, 3), 0);
  ASSERT_TRUE(slow);
  service.run_until_idle();
  ASSERT_TRUE(service.status().ok());
  EXPECT_EQ(service.outcome(*slow).terminal, TenantTerminal::kQuarantined);
  EXPECT_EQ(service.outcome(*slow).error.code,
            ErrorCode::kTenantDeadlineExceeded);
}

/// Depart vs quarantine in every tenant state, as a pure function of the
/// thread count — the outcomes must not depend on it.
std::vector<TenantOutcome> depart_race_outcomes(std::size_t threads) {
  const auto sched = make_scheduler(SchedulerKind::kStatic, 0);
  ServiceConfig sc = small_service_config();
  sc.engine_threads = threads;
  PagingService service(*sched, sc);

  // 0: departs while queued (faulty, but the engine never sees it).
  // 1: departs while active, racing its own quarantine at the same box
  //    boundary — the quarantine must win.
  // 2: quarantined, then depart()ed after the fact (no-op).
  // 3: completes, then depart()ed after the fact (no-op).
  const auto queued = service.submit(
      faulty(gen::cyclic_source(8, 200), TraceFaultClass::kFail, 0), 60);
  const auto racing = service.submit(
      faulty(gen::cyclic_source(8, 200), TraceFaultClass::kFail, 0), 0);
  const auto quarantined = service.submit(
      faulty(gen::cyclic_source(8, 200), TraceFaultClass::kFail, 30), 0);
  const auto completes = service.submit(gen::cyclic_source(8, 200), 0);
  EXPECT_TRUE(queued && racing && quarantined && completes);

  service.depart(*queued);
  // Two steps: the arrival batch activates the cohort, then the first box
  // batch runs and contains `racing`'s fault, leaving its forced departure
  // pending at the box boundary. (A depart() before any box runs would
  // legitimately win — the engine never reads the trace.)
  EXPECT_TRUE(service.step());
  EXPECT_TRUE(service.step());
  service.depart(*racing);  // Races the pending quarantine; quarantine wins.
  service.run_until_idle();
  EXPECT_TRUE(service.status().ok());
  service.depart(*quarantined);
  service.depart(*completes);

  std::vector<TenantOutcome> outcomes;
  for (TenantId t = 0; t < 4; ++t) outcomes.push_back(service.outcome(t));
  return outcomes;
}

TEST(PagingServiceQuarantineTest, DepartRacesQuarantineInEveryState) {
  const std::vector<TenantOutcome> outcomes = depart_race_outcomes(0);
  ASSERT_EQ(outcomes.size(), 4u);
  EXPECT_EQ(outcomes[0].terminal, TenantTerminal::kDeparted);
  EXPECT_EQ(outcomes[0].hits + outcomes[0].misses, 0u);
  // The race: quarantine outranks the pending depart.
  EXPECT_EQ(outcomes[1].terminal, TenantTerminal::kQuarantined);
  EXPECT_EQ(outcomes[1].error.code, ErrorCode::kCorruptTrace);
  // Post-terminal departs are no-ops.
  EXPECT_EQ(outcomes[2].terminal, TenantTerminal::kQuarantined);
  EXPECT_EQ(outcomes[3].terminal, TenantTerminal::kCompleted);

  for (const std::size_t threads :
       {std::size_t{2}, ThreadPool::hardware_jobs()}) {
    const std::vector<TenantOutcome> got = depart_race_outcomes(threads);
    ASSERT_EQ(got.size(), outcomes.size());
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      EXPECT_EQ(got[i].terminal, outcomes[i].terminal)
          << "threads=" << threads << " tenant=" << i;
      EXPECT_EQ(got[i].completed, outcomes[i].completed);
      EXPECT_EQ(got[i].hits, outcomes[i].hits);
      EXPECT_EQ(got[i].misses, outcomes[i].misses);
      EXPECT_EQ(got[i].error.code, outcomes[i].error.code);
    }
  }
}

TEST(PagingServiceQuarantineTest, MaxEventsBreachDrainsCompletedOutcomes) {
  // Four identical tenants under STATIC finish in one same-time batch. A
  // budget that trips inside that batch must still surface every finish
  // that already happened at that simulated time (partial metrics, not
  // discarded work).
  const auto clean_events = [] {
    const auto sched = make_scheduler(SchedulerKind::kStatic, 0);
    PagingService service(*sched, small_service_config());
    for (int i = 0; i < 4; ++i)
      EXPECT_TRUE(service.submit(gen::cyclic_source(8, 96), 0).has_value());
    service.run_until_idle();
    EXPECT_TRUE(service.status().ok());
    EXPECT_EQ(service.metrics().completed, 4u);
    return service.metrics().events_consumed;
  }();
  ASSERT_GT(clean_events, 4u);

  const auto sched = make_scheduler(SchedulerKind::kStatic, 0);
  ServiceConfig sc = small_service_config();
  sc.max_events = clean_events - 2;  // Trips between the 2nd and 3rd finish.
  PagingService service(*sched, sc);
  for (int i = 0; i < 4; ++i)
    ASSERT_TRUE(service.submit(gen::cyclic_source(8, 96), 0).has_value());
  service.run_until_idle();

  ASSERT_FALSE(service.status().ok());
  EXPECT_EQ(service.status().error.code, ErrorCode::kCellBudgetExceeded);
  const ServiceMetrics m = service.metrics();
  // All four finishes were at the breach time: charged or drained, every
  // one surfaces as a completed outcome with its true completion time.
  EXPECT_EQ(m.completed, 4u);
  EXPECT_EQ(m.events_consumed, sc.max_events + 1);
  for (TenantId t = 0; t < 4; ++t) {
    EXPECT_EQ(service.outcome(t).terminal, TenantTerminal::kCompleted);
    EXPECT_GT(service.outcome(t).completed, 0u);
  }
}

TEST(PagingServiceSheddingTest, ShedOldestEvictsTheFrontOfTheQueue) {
  const auto sched = make_scheduler(SchedulerKind::kStatic, 0);
  ServiceConfig sc = small_service_config();
  sc.admission_queue_limit = 2;
  sc.admission_policy = AdmissionPolicy::kShedOldest;
  PagingService service(*sched, sc);
  std::vector<TenantId> shed_callbacks;
  service.on_completion([&](const TenantOutcome& out) {
    if (out.terminal == TenantTerminal::kDeparted)
      shed_callbacks.push_back(out.tenant);
  });

  const auto a = service.submit(gen::cyclic_source(8, 60), 0);
  const auto b = service.submit(gen::cyclic_source(8, 60), 0);
  const auto c = service.submit(gen::cyclic_source(8, 60), 0);
  ASSERT_TRUE(a && b && c);  // C is admitted to the queue; A is shed.
  EXPECT_EQ(shed_callbacks, std::vector<TenantId>{*a});
  EXPECT_EQ(service.outcome(*a).terminal, TenantTerminal::kDeparted);
  EXPECT_EQ(service.metrics().shed, 1u);
  EXPECT_EQ(service.metrics().rejected, 0u);

  service.run_until_idle();
  ASSERT_TRUE(service.status().ok());
  EXPECT_EQ(service.outcome(*b).terminal, TenantTerminal::kCompleted);
  EXPECT_EQ(service.outcome(*c).terminal, TenantTerminal::kCompleted);
}

TEST(PagingServiceSheddingTest, ShedLargestEvictsByDeclaredLength) {
  const auto sched = make_scheduler(SchedulerKind::kStatic, 0);
  ServiceConfig sc = small_service_config();
  sc.admission_queue_limit = 2;
  sc.admission_policy = AdmissionPolicy::kShedLargest;
  PagingService service(*sched, sc);

  const auto small = service.submit(gen::cyclic_source(8, 100), 0);
  const auto large = service.submit(gen::cyclic_source(8, 300), 0);
  // A mid-sized newcomer sheds the queued 300-request tenant.
  const auto mid = service.submit(gen::cyclic_source(8, 200), 0);
  ASSERT_TRUE(small && large && mid);
  EXPECT_EQ(service.outcome(*large).terminal, TenantTerminal::kDeparted);
  EXPECT_EQ(service.metrics().shed, 1u);

  // A newcomer that would itself be the largest is the one shed: rejected.
  EXPECT_FALSE(service.submit(gen::cyclic_source(8, 500), 0).has_value());
  EXPECT_EQ(service.metrics().rejected, 1u);
  // A newcomer tying the queued maximum is the most recent: rejected too.
  EXPECT_FALSE(service.submit(gen::cyclic_source(8, 200), 0).has_value());
  EXPECT_EQ(service.metrics().rejected, 2u);

  service.run_until_idle();
  ASSERT_TRUE(service.status().ok());
  EXPECT_EQ(service.outcome(*small).terminal, TenantTerminal::kCompleted);
  EXPECT_EQ(service.outcome(*mid).terminal, TenantTerminal::kCompleted);
}

TEST(PagingServiceHealthTest, DegradesOnQueueDepthAndRecovers) {
  const auto sched = make_scheduler(SchedulerKind::kStatic, 0);
  ServiceConfig sc = small_service_config();
  sc.admission_queue_limit = 4;
  sc.degraded_queue_fraction = 0.5;
  PagingService service(*sched, sc);
  ASSERT_TRUE(service.submit(gen::cyclic_source(8, 40), 0).has_value());
  EXPECT_EQ(service.metrics().health, ServiceHealth::kHealthy);
  ASSERT_TRUE(service.submit(gen::cyclic_source(8, 40), 0).has_value());
  EXPECT_EQ(service.metrics().health, ServiceHealth::kDegraded);
  service.run_until_idle();
  ASSERT_TRUE(service.status().ok());
  EXPECT_EQ(service.metrics().health, ServiceHealth::kHealthy);
}

TEST(PagingServiceHealthTest, DegradesOnQuarantineRate) {
  const auto run_with_threshold = [](double threshold) {
    const auto sched = make_scheduler(SchedulerKind::kStatic, 0);
    ServiceConfig sc = small_service_config();
    sc.degraded_quarantine_fraction = threshold;
    PagingService service(*sched, sc);
    EXPECT_TRUE(service
                    .submit(faulty(gen::cyclic_source(8, 120),
                                   TraceFaultClass::kFail, 20),
                            0)
                    .has_value());
    EXPECT_TRUE(service.submit(gen::cyclic_source(8, 120), 0).has_value());
    service.run_until_idle();
    EXPECT_TRUE(service.status().ok());
    return service.metrics().health;
  };
  // 1 of 2 finished tenants quarantined: 0.5 > 0.05 degrades ...
  EXPECT_EQ(run_with_threshold(0.05), ServiceHealth::kDegraded);
  // ... but a tolerant threshold stays healthy.
  EXPECT_EQ(run_with_threshold(1.0), ServiceHealth::kHealthy);
}

TEST(PagingServiceHealthTest, AdmissionPolicyNamesRoundTrip) {
  for (const AdmissionPolicy policy :
       {AdmissionPolicy::kFifoReject, AdmissionPolicy::kShedOldest,
        AdmissionPolicy::kShedLargest}) {
    const auto parsed = parse_admission_policy(admission_policy_name(policy));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(parse_admission_policy("drop-everything").has_value());
  EXPECT_STREQ(tenant_terminal_name(TenantTerminal::kQuarantined),
               "quarantined");
}

// --- The isolation proof --------------------------------------------------

/// One fixed submission sequence of `kTenants` tenants; `faulty_fraction`
/// toggles whether every 4th tenant carries an injected trace fault. STATIC
/// keeps tenants' box sequences independent of the active set, and the
/// queue limit exceeds the tenant count, so the submission and admission
/// sequences are identical with and without faults — any difference in a
/// healthy tenant's outcome would be containment leaking.
std::vector<TenantOutcome> mixed_run(bool with_faults, std::size_t threads) {
  const auto sched = make_scheduler(SchedulerKind::kStatic, 0);
  ServiceConfig sc;
  sc.cache_size = 32;
  sc.miss_cost = 4;
  sc.engine_threads = threads;
  sc.admission_queue_limit = 64;
  PagingService service(*sched, sc);

  constexpr std::uint64_t kTenants = 24;
  for (std::uint64_t i = 0; i < kTenants; ++i) {
    auto source = gen::cyclic_source(
        6 + i % 5, static_cast<std::size_t>(100 + 13 * i));
    if (with_faults && i % 4 == 1) {
      source = faulty(source,
                      i % 8 == 1 ? TraceFaultClass::kFail
                                 : TraceFaultClass::kHostilePage,
                      25 + i);
    }
    EXPECT_TRUE(service.submit(std::move(source), Time(i * 3)).has_value());
  }
  service.run_until_idle();
  EXPECT_TRUE(service.status().ok());
  std::vector<TenantOutcome> outcomes;
  for (TenantId t = 0; t < kTenants; ++t)
    outcomes.push_back(service.outcome(t));
  return outcomes;
}

TEST(PagingServiceIsolationTest, HealthyTenantsAreByteIdenticalUnderFaults) {
  const std::vector<TenantOutcome> baseline = mixed_run(false, 0);
  for (const std::size_t threads :
       {std::size_t{0}, std::size_t{2}, ThreadPool::hardware_jobs()}) {
    const std::vector<TenantOutcome> got = mixed_run(true, threads);
    ASSERT_EQ(got.size(), baseline.size());
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      if (i % 4 == 1) {
        EXPECT_EQ(got[i].terminal, TenantTerminal::kQuarantined)
            << "threads=" << threads << " tenant=" << i;
        EXPECT_EQ(got[i].error.code, ErrorCode::kCorruptTrace);
        continue;
      }
      // Healthy tenant: every outcome field identical to the fault-free
      // run of the same submission sequence.
      EXPECT_EQ(got[i].terminal, TenantTerminal::kCompleted)
          << "threads=" << threads << " tenant=" << i;
      EXPECT_EQ(got[i].admitted, baseline[i].admitted);
      EXPECT_EQ(got[i].completed, baseline[i].completed)
          << "threads=" << threads << " tenant=" << i;
      EXPECT_EQ(got[i].hits, baseline[i].hits);
      EXPECT_EQ(got[i].misses, baseline[i].misses);
    }
  }
}

}  // namespace
}  // namespace ppg
