#include <gtest/gtest.h>

#include "trace/workload.hpp"

namespace ppg {
namespace {

WorkloadParams small() {
  WorkloadParams p;
  p.num_procs = 8;
  p.cache_size = 32;
  p.requests_per_proc = 1000;
  p.seed = 7;
  return p;
}

class AllWorkloads : public ::testing::TestWithParam<WorkloadKind> {};

TEST_P(AllWorkloads, ShapeAndDisjointness) {
  const MultiTrace mt = make_workload(GetParam(), small());
  EXPECT_EQ(mt.num_procs(), 8u);
  EXPECT_TRUE(mt.validate_disjoint());
  for (ProcId i = 0; i < mt.num_procs(); ++i)
    EXPECT_FALSE(mt.trace(i).empty()) << "proc " << i;
}

TEST_P(AllWorkloads, DeterministicGivenSeed) {
  const MultiTrace a = make_workload(GetParam(), small());
  const MultiTrace b = make_workload(GetParam(), small());
  for (ProcId i = 0; i < a.num_procs(); ++i)
    EXPECT_EQ(a.trace(i).requests(), b.trace(i).requests());
}

INSTANTIATE_TEST_SUITE_P(Kinds, AllWorkloads,
                         ::testing::ValuesIn(all_workload_kinds()));

TEST(Workload, SkewedLengthsVary) {
  const MultiTrace mt = make_workload(WorkloadKind::kSkewedLengths, small());
  std::size_t min_len = SIZE_MAX;
  std::size_t max_len = 0;
  for (ProcId i = 0; i < mt.num_procs(); ++i) {
    min_len = std::min(min_len, mt.trace(i).size());
    max_len = std::max(max_len, mt.trace(i).size());
  }
  EXPECT_GE(max_len, 4 * min_len);
}

TEST(Workload, UniformLengthsOtherwise) {
  const MultiTrace mt =
      make_workload(WorkloadKind::kHomogeneousCyclic, small());
  for (ProcId i = 0; i < mt.num_procs(); ++i)
    EXPECT_EQ(mt.trace(i).size(), 1000u);
}

TEST(Workload, KindNamesAreUnique) {
  std::vector<std::string> names;
  for (WorkloadKind kind : all_workload_kinds())
    names.emplace_back(workload_kind_name(kind));
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

}  // namespace
}  // namespace ppg
