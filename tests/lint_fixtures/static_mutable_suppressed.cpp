// Same violations as static_mutable_bad.cpp, silenced with rationales —
// the pattern util/interrupt.cpp's signal flag would use if it were not a
// designated exception.
#include <cstdint>

namespace fixture {

// ppg-lint: allow(static-mutable): crash-only telemetry, never read back
std::uint64_t g_crash_count = 0;

std::uint64_t next_id() {
  // ppg-lint: allow(static-mutable): intentional process-wide id sequence
  static std::uint64_t counter = 0;
  return ++counter;
}

}  // namespace fixture
