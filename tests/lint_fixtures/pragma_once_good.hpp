// Clean: a leading comment block is fine; the first code line is the guard.
#pragma once

int fixture_value();
