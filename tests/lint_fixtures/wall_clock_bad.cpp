// Violates wall-clock: seeds depend on real time.
#include <ctime>

long stamp() { return static_cast<long>(std::time(nullptr)); }
