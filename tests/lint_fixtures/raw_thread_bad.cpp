// Violates raw-thread (library realm): an ad-hoc std::thread bypasses the
// determinism contract of util/thread_pool (slot-indexed output, interrupt
// drain, first-error capture).
#include <thread>

void touch_all(int* data, int n) {
  std::thread worker([&] {
    for (int i = 0; i < n; ++i) data[i] = i;
  });
  worker.join();
}
