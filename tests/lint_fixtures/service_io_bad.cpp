// Violates service-io on purpose: the service layer reading its own inputs
// instead of accepting TraceSource objects / spec strings.
#include <cstdio>
#include <fstream>
#include <iostream>

namespace ppg {

int load_tenant_trace(const char* path, std::FILE* raw) {
  std::ifstream in(path);
  int page = 0;
  std::cin >> page;
  char buffer[64];
  std::fscanf(raw, "%d", &page);
  std::fread(buffer, 1, sizeof(buffer), raw);
  std::fgets(buffer, sizeof(buffer), raw);
  return page;
}

}  // namespace ppg
