// Same violation, silenced with a rationale (pretend a sort follows).
#include <unordered_map>

int drain() {
  std::unordered_map<int, int> counts;
  counts[1] = 2;
  int sum = 0;
  // ppg-lint: allow(unordered-iter): order-insensitive fold (sum)
  for (const auto& [page, hits] : counts) sum += hits;
  return sum;
}
