// Same violation, silenced per line.
#include <iostream>

void report(int hits) {
  std::cout << hits << "\n";  // ppg-lint: allow(io-sink): fixture
}
