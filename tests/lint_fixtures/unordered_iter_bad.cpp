// Violates unordered-iter: range-for over an unordered container could
// feed output in an unspecified order.
#include <unordered_map>

int drain() {
  std::unordered_map<int, int> counts;
  counts[1] = 2;
  int sum = 0;
  for (const auto& [page, hits] : counts) sum += hits;
  return sum;
}
