// Violates raw-file-write (library realm): an ofstream to a final path can
// leave a torn file behind on crash.
#include <fstream>
#include <string>

void save(const std::string& path, const std::string& data) {
  std::ofstream out(path);
  out << data;
}
