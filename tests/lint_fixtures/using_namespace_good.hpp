#pragma once

// Clean: qualified names and aliases only.
#include <string>

namespace fixture {
using StringAlias = std::string;
StringAlias fixture_name();
}  // namespace fixture
