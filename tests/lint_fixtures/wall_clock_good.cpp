// Clean: no wall-clock source; identifiers merely containing "time" are
// fine, as are strings like "time(LRU, 2k)".
long sim_time(long steps) { return steps * 2; }

const char* label() { return "time(LRU, 2k) / time(BELADY, k)"; }
