// Same violation, silenced per line.
#include <stdexcept>

void fail() {
  throw std::runtime_error("x");  // ppg-lint: allow(raw-throw): fixture
}
