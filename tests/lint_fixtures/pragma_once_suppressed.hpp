// Violation silenced file-wide. ppg-lint: allow-file(pragma-once)
int fixture_value();
