// Clean: the unordered container is consumed via lookups only; the loop
// iterates a vector.
#include <unordered_map>
#include <vector>

int drain() {
  std::unordered_map<int, int> counts;
  counts[1] = 2;
  std::vector<int> keys{1};
  int sum = 0;
  for (const int key : keys) sum += counts[key];
  return sum;
}
