#pragma once

// Violation silenced per line.
#include <string>

using namespace std;  // ppg-lint: allow(using-namespace-header): fixture

string fixture_name();
