// Violates raw-throw (library realm): bare std exception loses the
// structured ppg::Error context.
#include <stdexcept>

void fail() { throw std::runtime_error("unstructured"); }
