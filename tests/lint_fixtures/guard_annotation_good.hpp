// Clean twin of guard_annotation_bad.hpp: every mutable member of the
// mutex-holding class carries an annotation naming its discipline, and a
// class without a mutex owes nothing.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/thread_annotations.hpp"

namespace fixture {

class Cache {
 public:
  void put(std::uint64_t key);
  std::size_t size() const;

 private:
  std::mutex mutex_;
  std::vector<std::uint64_t> entries_ PPG_GUARDED_BY(mutex_);
  std::uint64_t hits_ PPG_GUARDED_BY(mutex_) = 0;
  std::uint64_t scratch_ PPG_CALLER_SYNCHRONIZED(driver thread) = 0;
  const std::string name_ = "cache";
};

// No mutex anywhere: plain members need no annotations.
struct Plain {
  std::uint64_t key = 0;
  std::vector<std::uint64_t> values;
};

}  // namespace fixture
