// Same violation, silenced per line.
#include <fstream>
#include <string>

void save(const std::string& path, const std::string& data) {
  std::ofstream out(path);  // ppg-lint: allow(raw-file-write): fixture
  out << data;
}
