// Same violation as guard_annotation_bad.hpp, silenced by a suppression
// with a rationale — the escape hatch for members with a real discipline
// the annotations cannot express.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

namespace fixture {

class Cache {
 public:
  void put(std::uint64_t key);

 private:
  std::mutex mutex_;
  // ppg-lint: allow(guard-annotation): written only before threads start
  std::vector<std::uint64_t> entries_;
  // ppg-lint: allow(guard-annotation): monotonic counter, torn reads fine
  std::uint64_t hits_ = 0;
};

}  // namespace fixture
