// Same violations as service_io_bad, silenced by a file-wide suppression.
// ppg-lint: allow-file(service-io): fixture proves the escape hatch works
#include <cstdio>
#include <fstream>
#include <iostream>

namespace ppg {

int load_tenant_trace(const char* path, std::FILE* raw) {
  std::ifstream in(path);
  int page = 0;
  std::cin >> page;
  char buffer[64];
  std::fscanf(raw, "%d", &page);
  std::fread(buffer, 1, sizeof(buffer), raw);
  std::fgets(buffer, sizeof(buffer), raw);
  return page;
}

}  // namespace ppg
