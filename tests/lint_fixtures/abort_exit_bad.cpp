// Violates abort-exit (library realm): kills the process outside PPG_CHECK.
#include <cstdlib>

void die() { std::abort(); }
