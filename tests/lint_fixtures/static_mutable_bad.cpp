// Violates static-mutable: namespace-scope, class-static, and
// function-local static mutable state — process-global state that makes
// results depend on call history instead of arguments.
#include <cstdint>
#include <string>

namespace fixture {

std::uint64_t g_call_count = 0;

namespace {
std::string g_last_label;
}  // namespace

struct Registry {
  static std::uint64_t instances;
};

std::uint64_t next_id() {
  static std::uint64_t counter = 0;
  thread_local std::uint64_t local_bump = 1;
  counter += local_bump;
  return counter;
}

}  // namespace fixture
