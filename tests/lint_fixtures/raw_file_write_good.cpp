// Clean: durable writes go through util/atomic_file (temp + fsync +
// rename), so readers never observe a half-written file.
#include <string>
#include <string_view>

namespace ppg {
void atomic_write_file(const std::string& path, std::string_view contents);
}

void save(const std::string& path, const std::string& data) {
  ppg::atomic_write_file(path, data);
}
