// Violates pragma-once: the first non-comment line is a declaration.
int fixture_value();
