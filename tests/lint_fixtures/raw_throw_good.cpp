// Clean: library code routes failures through ppg::throw_error.
#include "util/error.hpp"

void fail() { ppg::throw_error(ppg::ErrorCode::kBadInput, "structured"); }
