// Same violations as service_catch_all_bad, silenced by a file-wide
// suppression.
// ppg-lint: allow-file(service-catch-all): fixture proves the escape hatch
#include <exception>

namespace ppg {

int contain(int (*step)()) {
  try {
    return step();
  } catch (const std::exception&) {
    return -1;
  } catch (...) {
    return -2;
  }
}

}  // namespace ppg
