// Same violations as unseeded_rng_bad.cpp, silenced with rationales.
#include <cstdint>

#include "util/rng.hpp"

namespace fixture {

std::uint64_t draw() {
  // ppg-lint: allow(unseeded-rng): default stream compared against itself
  auto rng = ppg::Rng();
  // ppg-lint: allow(unseeded-rng): placeholder reseeded before first draw
  auto other = ppg::Rng{};
  return rng() ^ other();
}

}  // namespace fixture
