// Clean twin of unseeded_rng_bad.cpp: every generator flows from an
// explicit seed expression — a config seed, a per-cell derivation, or a
// fork of an already-seeded generator.
#include <cstdint>

#include "util/rng.hpp"

namespace fixture {

struct Config {
  std::uint64_t seed = 1;
};

class Sampler {
 public:
  explicit Sampler(const Config& config) : rng_(config.seed) {}
  std::uint64_t draw() { return rng_(); }

 private:
  ppg::Rng rng_;  // Seeded through the constructor: a member is not a taint.
};

std::uint64_t draw(std::uint64_t seed) {
  ppg::Rng rng(seed);
  ppg::Rng forked = rng.fork();
  return rng() ^ forked();
}

}  // namespace fixture
