// Clean twin of static_mutable_bad.cpp: constants, function declarations,
// types, and locals are all fine — only mutable statics are globals.
#include <cstdint>
#include <string>

namespace fixture {

constexpr std::uint64_t kSeedMix = 0x9e3779b97f4a7c15ull;
const std::string kLabel = "fixture";

namespace {
constexpr std::uint64_t kTableSize = 64;
std::uint64_t mix(std::uint64_t x) { return x * kSeedMix; }
}  // namespace

struct Registry {
  static std::uint64_t instances();  // Static method, not static state.
  std::uint64_t id = 0;
};

std::uint64_t next_id(std::uint64_t previous) {
  static const std::uint64_t kStride = kTableSize;  // Const static: fine.
  std::uint64_t counter = previous;
  return mix(counter + kStride);
}

}  // namespace fixture
