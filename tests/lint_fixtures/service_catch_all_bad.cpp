// Violates service-catch-all on purpose: type-erasing handlers in a
// containment layer, discarding the structured ppg::Error that quarantine
// outcomes are built from.
#include <exception>

namespace ppg {

int contain(int (*step)()) {
  try {
    return step();
  } catch (const std::exception&) {
    return -1;
  } catch (...) {
    return -2;
  }
}

}  // namespace ppg
