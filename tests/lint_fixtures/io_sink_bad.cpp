// Violates io-sink (library realm): library code printing to the console.
#include <iostream>

void report(int hits) { std::cout << hits << "\n"; }
