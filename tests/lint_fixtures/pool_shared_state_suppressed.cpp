// Same violation as pool_shared_state_bad.cpp, silenced file-wide: the
// rule keys on the first fan-out call, so a file whose every fan-out is
// stateless can say so once.
//
// ppg-lint: allow-file(pool-shared-state): fire-and-forget side effects only
#include <cstddef>
#include <vector>

#include "util/thread_pool.hpp"

namespace fixture {

std::vector<std::size_t> squares(std::size_t n) {
  std::vector<std::size_t> out(n);
  ppg::parallel_for_index(2, n, [&](std::size_t i) { out[i] = i * i; });
  return out;
}

}  // namespace fixture
