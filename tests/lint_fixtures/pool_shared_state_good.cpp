// Clean twin of pool_shared_state_bad.cpp: the fan-out's result slots are
// annotated with the sharding discipline that makes them race-free.
#include <cstddef>
#include <vector>

#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"

namespace fixture {

std::vector<std::size_t> squares(std::size_t n) {
  std::vector<std::size_t> out PPG_SHARDED_BY(index i)(n);
  ppg::parallel_for_index(2, n, [&](std::size_t i) { out[i] = i * i; });
  return out;
}

}  // namespace fixture
