// Same violation, silenced by a suppression on the preceding line.
#include <ctime>  // ppg-lint: allow(wall-clock): fixture

// ppg-lint: allow(wall-clock): fixture exercises the directive-above form
long stamp() { return static_cast<long>(std::time(nullptr)); }
