// Violates unseeded-rng: generators default-constructed with no seed
// expression, so their stream depends on whatever the default does rather
// than on an explicit, reproducible seed.
#include <cstdint>

#include "util/rng.hpp"

namespace fixture {

std::uint64_t draw() {
  auto rng = ppg::Rng();
  auto other = ppg::Rng{};
  ppg::Rng* heap = new ppg::Rng;
  const std::uint64_t value =
      rng() ^ other() ^ (*heap)();
  delete heap;
  return value;
}

}  // namespace fixture
