// Same violation, silenced file-wide to exercise allow-file.
// ppg-lint: allow-file(abort-exit)
#include <cstdlib>

void die() { std::abort(); }
