// Same violation, silenced per line.
#include <thread>

void touch_all(int* data, int n) {
  // ppg-lint: allow(raw-thread): fixture
  std::thread worker([&] {
    for (int i = 0; i < n; ++i) data[i] = i;
  });
  worker.join();
}
