// Clean: environment hooks go through util/env.hpp, which parses and
// validates the value (and is itself the designated raw-getenv exception).
#include <cstdint>
#include <optional>

namespace ppg {
std::optional<std::uint64_t> env_u64(const char* name);
}

std::int64_t kill_after() {
  const auto hook = ppg::env_u64("PPG_SWEEP_KILL_AFTER");
  return hook ? static_cast<std::int64_t>(*hook) : -1;
}
