// Violates banned-random: direct <random> engine instead of ppg::Rng.
#include <random>

int draw() {
  std::mt19937 gen(42);
  return static_cast<int>(gen());
}
