#pragma once

// Violates using-namespace-header: leaks std into every includer.
#include <string>

using namespace std;

string fixture_name();
