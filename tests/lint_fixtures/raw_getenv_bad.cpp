// Violates raw-getenv (library realm): a raw environment read makes the
// result depend on ambient process state, bypassing flag parsing and
// validation.
#include <cstdlib>
#include <string>

std::string kill_after() {
  const char* raw = std::getenv("PPG_SWEEP_KILL_AFTER");
  return raw != nullptr ? raw : "";
}
