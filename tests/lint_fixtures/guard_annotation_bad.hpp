// Violates guard-annotation: a class holds a mutex but leaves mutable
// members with no thread-safety annotation — nothing records which lock (or
// which discipline) protects them.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace fixture {

class Cache {
 public:
  void put(std::uint64_t key);
  std::size_t size() const;
  static Cache empty();

 private:
  std::mutex mutex_;
  std::vector<std::uint64_t> entries_;
  std::uint64_t hits_ = 0;
  // Immutable and method members never need a guard.
  const std::string name_ = "cache";
  static constexpr std::size_t kMaxEntries = 128;
};

}  // namespace fixture
