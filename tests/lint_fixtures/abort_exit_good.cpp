// Clean: invariant failures go through PPG_CHECK (whose expansion lives in
// util/assert.hpp, a designated exception).
#include "util/assert.hpp"

void check(int value) { PPG_CHECK(value >= 0); }
