// Clean: library code returns data; formatting into a string is fine.
#include <string>

std::string report(int hits) { return std::to_string(hits); }
