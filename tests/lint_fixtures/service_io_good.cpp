// Clean twin of service_io_bad: tenant workloads enter the service as a
// TraceSource the caller built, or a spec string the trace layer parses.
// The service itself never touches files or stdin.
#include <memory>
#include <string>

namespace ppg {

struct TraceSource;

void submit_tenant(std::shared_ptr<const TraceSource> source,
                   const std::string& spec) {
  (void)source;
  (void)spec;
}

}  // namespace ppg
