// Clean: concurrency goes through util/thread_pool, whose executor owns
// the determinism, interrupt, and error-capture behaviour (and which is
// itself the designated raw-thread exception).
#include <cstddef>
#include <functional>

namespace ppg {
void parallel_for_index(std::size_t jobs, std::size_t n,
                        const std::function<void(std::size_t)>& fn);
}

void touch_all(int* data, std::size_t n) {
  ppg::parallel_for_index(4, n,
                          [&](std::size_t i) { data[i] = static_cast<int>(i); });
}
