// Same violation, silenced by a per-line suppression with rationale.
#include <random>  // ppg-lint: allow(banned-random): fixture exercises raw engine

int draw() {
  std::mt19937 gen(42);  // ppg-lint: allow(banned-random): fixture
  return static_cast<int>(gen());
}
