// Same violation, silenced per line.
#include <cstdlib>
#include <string>

std::string kill_after() {
  // ppg-lint: allow(raw-getenv): fixture
  const char* raw = std::getenv("PPG_SWEEP_KILL_AFTER");
  return raw != nullptr ? raw : "";
}
