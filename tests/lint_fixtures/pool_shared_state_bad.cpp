// Violates pool-shared-state: fans work out across the thread pool but
// declares no shared-state annotation anywhere — the result slots'
// discipline is undocumented.
#include <cstddef>
#include <vector>

#include "util/thread_pool.hpp"

namespace fixture {

std::vector<std::size_t> squares(std::size_t n) {
  std::vector<std::size_t> out(n);
  ppg::parallel_for_index(2, n, [&](std::size_t i) { out[i] = i * i; });
  return out;
}

}  // namespace fixture
