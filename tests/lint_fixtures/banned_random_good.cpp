// Clean: randomness flows through util/rng.hpp. A comment naming
// std::rand or std::random_device must not trigger the rule.
#include "util/rng.hpp"

int draw() {
  ppg::Rng rng(42);
  return static_cast<int>(rng() & 0x7fffffff);
}

const char* label() { return "uses std::random_device"; }
