// Clean twin of service_catch_all_bad: the containment layer catches the
// project exception type, so the structured Error payload (code, proc,
// time, offset) survives into the quarantine outcome.
namespace ppg {

struct Error {
  int code = 0;
};

struct PpgException {
  const Error& error() const { return error_; }
  Error error_;
};

Error contain(int (*step)()) {
  try {
    step();
  } catch (const PpgException& e) {
    return e.error();
  }
  return Error{};
}

}  // namespace ppg
