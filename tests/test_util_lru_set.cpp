#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/lru_set.hpp"
#include "util/rng.hpp"

namespace ppg {
namespace {

TEST(LruSet, StartsEmpty) {
  LruSet set(4);
  EXPECT_EQ(set.size(), 0u);
  EXPECT_TRUE(set.empty());
  EXPECT_FALSE(set.full());
  EXPECT_EQ(set.lru_page(), kInvalidPage);
}

TEST(LruSet, MissThenHit) {
  LruSet set(2);
  PageId evicted;
  EXPECT_FALSE(set.access(1, evicted));
  EXPECT_EQ(evicted, kInvalidPage);
  EXPECT_TRUE(set.access(1, evicted));
  EXPECT_EQ(set.size(), 1u);
}

TEST(LruSet, EvictsLeastRecentlyUsed) {
  LruSet set(2);
  set.access(1);
  set.access(2);
  PageId evicted;
  EXPECT_FALSE(set.access(3, evicted));
  EXPECT_EQ(evicted, 1u);  // 1 is LRU
  EXPECT_TRUE(set.contains(2));
  EXPECT_TRUE(set.contains(3));
  EXPECT_FALSE(set.contains(1));
}

TEST(LruSet, TouchRefreshesRecency) {
  LruSet set(2);
  set.access(1);
  set.access(2);
  set.access(1);  // 1 becomes MRU; 2 is now LRU
  PageId evicted;
  set.access(3, evicted);
  EXPECT_EQ(evicted, 2u);
}

TEST(LruSet, MruOrderIsMaintained) {
  LruSet set(3);
  set.access(1);
  set.access(2);
  set.access(3);
  set.access(2);
  const std::vector<PageId> order = set.pages_mru_order();
  EXPECT_EQ(order, (std::vector<PageId>{2, 3, 1}));
  EXPECT_EQ(set.lru_page(), 1u);
}

TEST(LruSet, EraseRemovesPage) {
  LruSet set(3);
  set.access(1);
  set.access(2);
  EXPECT_TRUE(set.erase(1));
  EXPECT_FALSE(set.erase(1));
  EXPECT_FALSE(set.contains(1));
  EXPECT_EQ(set.size(), 1u);
  // Slot reuse after erase.
  set.access(3);
  set.access(4);
  EXPECT_EQ(set.size(), 3u);
}

TEST(LruSet, EraseLruUpdatesVictim) {
  LruSet set(3);
  set.access(1);
  set.access(2);
  set.access(3);
  set.erase(1);
  EXPECT_EQ(set.lru_page(), 2u);
}

TEST(LruSet, ClearEmptiesEverything) {
  LruSet set(3);
  set.access(1);
  set.access(2);
  set.clear();
  EXPECT_TRUE(set.empty());
  EXPECT_FALSE(set.contains(1));
  set.access(5);
  EXPECT_TRUE(set.contains(5));
}

TEST(LruSet, CapacityOneAlwaysReplaces) {
  LruSet set(1);
  PageId evicted;
  set.access(1, evicted);
  set.access(2, evicted);
  EXPECT_EQ(evicted, 1u);
  set.access(3, evicted);
  EXPECT_EQ(evicted, 2u);
  EXPECT_EQ(set.size(), 1u);
}

// Cross-check against a straightforward reference implementation on random
// access streams, for a sweep of capacities.
class LruSetReference : public ::testing::TestWithParam<Height> {};

TEST_P(LruSetReference, MatchesNaiveModel) {
  const Height capacity = GetParam();
  LruSet set(capacity);
  std::vector<PageId> model;  // MRU at front
  Rng rng(1234 + capacity);

  for (int i = 0; i < 5000; ++i) {
    const PageId page = rng.next_below(capacity * 3 + 1);
    // Model step.
    const auto it = std::find(model.begin(), model.end(), page);
    const bool model_hit = it != model.end();
    PageId model_evicted = kInvalidPage;
    if (model_hit) {
      model.erase(it);
    } else if (model.size() == capacity) {
      model_evicted = model.back();
      model.pop_back();
    }
    model.insert(model.begin(), page);
    // DUT step.
    PageId evicted;
    const bool hit = set.access(page, evicted);
    ASSERT_EQ(hit, model_hit) << "iteration " << i;
    ASSERT_EQ(evicted, model_evicted) << "iteration " << i;
    ASSERT_EQ(set.size(), model.size());
    ASSERT_EQ(set.pages_mru_order(), model);
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, LruSetReference,
                         ::testing::Values(1, 2, 3, 4, 7, 16, 33));

TEST(LruSet, FusedPairMatchesAccess) {
  // try_touch + insert_absent must be exactly access() split in two.
  LruSet fused(3);
  LruSet plain(3);
  Rng rng(77);
  for (int i = 0; i < 2000; ++i) {
    const PageId page = rng.next_below(10);
    PageId evicted = kInvalidPage;
    const bool hit = plain.access(page, evicted);
    if (fused.try_touch(page)) {
      ASSERT_TRUE(hit);
      ASSERT_EQ(evicted, kInvalidPage);
    } else {
      ASSERT_FALSE(hit);
      ASSERT_EQ(fused.insert_absent(page), evicted);
    }
    ASSERT_EQ(fused.pages_mru_order(), plain.pages_mru_order());
  }
}

TEST(LruSet, TryTouchMissLeavesSetUntouched) {
  LruSet set(2);
  set.access(1);
  set.access(2);
  EXPECT_FALSE(set.try_touch(9));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.pages_mru_order(), (std::vector<PageId>{2, 1}));
}

TEST(LruSet, MruPageTracksMostRecent) {
  LruSet set(3);
  EXPECT_EQ(set.mru_page(), kInvalidPage);
  set.access(1);
  set.access(2);
  EXPECT_EQ(set.mru_page(), 2u);
  set.access(1);
  EXPECT_EQ(set.mru_page(), 1u);
}

TEST(LruSet, ResetChangesCapacityAndEmpties) {
  LruSet set(2);
  set.access(1);
  set.access(2);
  set.reset(4);
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.capacity(), 4u);
  for (PageId p = 10; p < 14; ++p) set.access(p);
  EXPECT_TRUE(set.full());
  EXPECT_FALSE(set.contains(1));
}

// The dense-index variant must be observationally identical to the hash
// variant on any stream drawn from its id universe.
class DenseLruSetParity : public ::testing::TestWithParam<Height> {};

TEST_P(DenseLruSetParity, MatchesHashIndexVariant) {
  const Height capacity = GetParam();
  const std::size_t universe = capacity * 3 + 1;
  DenseLruSet dense(capacity, universe);
  LruSet hash(capacity);
  Rng rng(4321 + capacity);
  for (int i = 0; i < 5000; ++i) {
    const PageId page = rng.next_below(universe);
    PageId dense_evicted = kInvalidPage;
    PageId hash_evicted = kInvalidPage;
    const bool dense_hit = dense.access(page, dense_evicted);
    const bool hash_hit = hash.access(page, hash_evicted);
    ASSERT_EQ(dense_hit, hash_hit) << "iteration " << i;
    ASSERT_EQ(dense_evicted, hash_evicted) << "iteration " << i;
    ASSERT_EQ(dense.pages_mru_order(), hash.pages_mru_order());
    // Sprinkle clears and resets to exercise the epoch-stamped index.
    if (i % 701 == 700) {
      dense.clear();
      hash.clear();
    }
    if (i % 1301 == 1300) {
      const Height next = 1 + (capacity + static_cast<Height>(i)) % capacity;
      dense.reset(next);
      hash.reset(next);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, DenseLruSetParity,
                         ::testing::Values(1, 2, 5, 16, 33));

// The open-addressing flat-index variant (the streaming box runner's
// cache) must also be observationally identical to the hash variant —
// including on sparse, structured ids (proc << 48 | local) and with resets
// growing past the initial table size.
class FlatLruSetParity : public ::testing::TestWithParam<Height> {};

TEST_P(FlatLruSetParity, MatchesHashIndexVariant) {
  const Height capacity = GetParam();
  const std::size_t universe = capacity * 3 + 1;
  FlatLruSet flat(capacity);
  LruSet hash(capacity);
  Rng rng(987 + capacity);
  for (int i = 0; i < 5000; ++i) {
    // Structured sparse ids: the high bits carry a processor tag, so the
    // raw low bits collide under a power-of-two mask without mixing.
    const PageId page = (PageId{3} << 48) | rng.next_below(universe);
    PageId flat_evicted = kInvalidPage;
    PageId hash_evicted = kInvalidPage;
    const bool flat_hit = flat.access(page, flat_evicted);
    const bool hash_hit = hash.access(page, hash_evicted);
    ASSERT_EQ(flat_hit, hash_hit) << "iteration " << i;
    ASSERT_EQ(flat_evicted, hash_evicted) << "iteration " << i;
    ASSERT_EQ(flat.pages_mru_order(), hash.pages_mru_order());
    if (i % 701 == 700) {
      flat.clear();
      hash.clear();
    }
    if (i % 1301 == 1300) {
      // Growing resets force the flat table to rebuild mid-stream.
      const Height next = 1 + (capacity + static_cast<Height>(i)) % (2 * capacity);
      flat.reset(next);
      hash.reset(next);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, FlatLruSetParity,
                         ::testing::Values(1, 2, 5, 16, 33));

TEST(FlatLruSet, EraseBackwardShiftKeepsProbesFindable) {
  // Insert colliding keys, erase one from the middle of the cluster, and
  // verify the displaced keys remain findable (no tombstone holes).
  FlatLruSet set(8);
  const std::vector<PageId> pages = {11, 22, 33, 44, 55, 66, 77, 88};
  for (const PageId p : pages) set.access(p);
  ASSERT_TRUE(set.full());
  EXPECT_TRUE(set.erase(44));
  EXPECT_FALSE(set.contains(44));
  for (const PageId p : pages) {
    if (p != 44) {
      EXPECT_TRUE(set.contains(p)) << p;
    }
  }
  // Eviction churn after the erase keeps the table consistent.
  for (PageId p = 100; p < 200; ++p) set.access(p);
  EXPECT_EQ(set.size(), 8u);
}

TEST(FlatLruSet, ResetGrowsCapacityPastInitialTable) {
  FlatLruSet set(2);
  set.reset(64);
  for (PageId p = 0; p < 64; ++p) {
    PageId evicted = kInvalidPage;
    set.access(p, evicted);
    ASSERT_EQ(evicted, kInvalidPage) << p;
  }
  EXPECT_TRUE(set.full());
  for (PageId p = 0; p < 64; ++p) ASSERT_TRUE(set.contains(p));
}

TEST(DenseLruSet, ClearIsEpochBased) {
  DenseLruSet set(4, std::size_t{8});
  for (PageId p = 0; p < 4; ++p) set.access(p);
  set.clear();
  EXPECT_TRUE(set.empty());
  for (PageId p = 0; p < 8; ++p) EXPECT_FALSE(set.contains(p));
  // Stale entries from before the clear must not resurrect.
  set.access(7);
  EXPECT_TRUE(set.contains(7));
  EXPECT_FALSE(set.contains(0));
  EXPECT_EQ(set.size(), 1u);
}

}  // namespace
}  // namespace ppg
