#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "core/blackbox_green.hpp"
#include "core/parallel_engine.hpp"
#include "trace/generators.hpp"
#include "trace/workload.hpp"

namespace ppg {
namespace {

MultiTrace mixed_workload(ProcId p, Height k, std::size_t len) {
  WorkloadParams params;
  params.num_procs = p;
  params.cache_size = k;
  params.requests_per_proc = len;
  params.seed = 5;
  return make_workload(WorkloadKind::kHeterogeneousMix, params);
}

EngineConfig config_for(Height k, Time s) {
  EngineConfig c;
  c.cache_size = k;
  c.miss_cost = s;
  return c;
}

TEST(BlackboxGreen, CompletesWithDetGreen) {
  const MultiTrace mt = mixed_workload(8, 32, 2000);
  auto scheduler = make_blackbox_green();
  const ParallelRunResult r = run_parallel(mt, *scheduler, config_for(32, 4));
  EXPECT_EQ(r.hits + r.misses, mt.total_requests());
}

TEST(BlackboxGreen, CompletesWithRandGreen) {
  BlackboxGreenConfig config;
  config.green = GreenKind::kRand;
  config.seed = 11;
  const MultiTrace mt = mixed_workload(8, 32, 2000);
  auto scheduler = make_blackbox_green(config);
  const ParallelRunResult r = run_parallel(mt, *scheduler, config_for(32, 4));
  EXPECT_EQ(r.hits + r.misses, mt.total_requests());
}

TEST(BlackboxGreen, PackingRespectsBudget) {
  BlackboxGreenConfig config;
  config.pack_factor = 2.0;
  const MultiTrace mt = mixed_workload(16, 64, 2000);
  auto scheduler = make_blackbox_green(config);
  const ParallelRunResult r = run_parallel(mt, *scheduler, config_for(64, 4));
  // pack_factor * k plus one in-flight box of height <= k.
  EXPECT_LE(r.peak_concurrent_height, 3 * 64u);
}

TEST(BlackboxGreen, FairnessKeepsImpactsBalanced) {
  // Equal-length single-use traces: every processor has identical work, so
  // fair packing must complete them at similar times.
  MultiTrace mt;
  const ProcId p = 8;
  for (ProcId i = 0; i < p; ++i)
    mt.add(gen::rebase_to_proc(gen::single_use(5000), i));
  auto scheduler = make_blackbox_green();
  const ParallelRunResult r = run_parallel(mt, *scheduler, config_for(32, 4));
  Time min_c = std::numeric_limits<Time>::max();
  Time max_c = 0;
  for (Time c : r.completion) {
    min_c = std::min(min_c, c);
    max_c = std::max(max_c, c);
  }
  EXPECT_LT(static_cast<double>(max_c),
            2.5 * static_cast<double>(min_c));
}

TEST(BlackboxGreen, RebootsShrinkLadderAsProcessorsFinish) {
  // With one long and several short sequences, after the short ones finish
  // the minimum box height for the survivor must grow (ladder reboot).
  MultiTrace mt;
  mt.add(gen::rebase_to_proc(gen::single_use(20000), 0));
  for (ProcId i = 1; i < 8; ++i)
    mt.add(gen::rebase_to_proc(gen::single_use(500), i));
  auto scheduler = make_blackbox_green();
  EngineConfig c = config_for(64, 4);
  Height min_late_height = 64;
  Time watermark = 0;
  std::vector<std::pair<Time, Height>> boxes;
  c.on_box = [&](ProcId proc, const BoxAssignment& box) {
    if (proc == 0) boxes.emplace_back(box.start, box.height);
  };
  const ParallelRunResult r = run_parallel(mt, *scheduler, c);
  // After 80% of the run, proc 0 is alone: min height should be the full
  // ladder minimum k/1 = 64 (pow2) rather than k/8 = 8.
  watermark = r.makespan * 8 / 10;
  for (const auto& [start, height] : boxes)
    if (start >= watermark) min_late_height = std::min(min_late_height, height);
  EXPECT_GE(min_late_height, 32u);
}

TEST(BlackboxGreen, DeterministicWithDetGreen) {
  const MultiTrace mt = mixed_workload(8, 32, 1000);
  auto s1 = make_blackbox_green();
  auto s2 = make_blackbox_green();
  const ParallelRunResult a = run_parallel(mt, *s1, config_for(32, 4));
  const ParallelRunResult b = run_parallel(mt, *s2, config_for(32, 4));
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.completion, b.completion);
}

}  // namespace
}  // namespace ppg
