// Cell codec: journaled payloads must round-trip bit-exactly (resumed
// output is byte-compared against uninterrupted runs) and decode
// defensively — truncation, trailing bytes, and hostile vector lengths are
// structured kCorruptTrace errors, never crashes or huge allocations.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "bench_support/cell_codec.hpp"
#include "bench_support/experiment.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace ppg {
namespace {

TEST(CellCodec, ScalarsRoundTrip) {
  CellWriter w;
  w.u8(0xab);
  w.u32(0xdeadbeefu);
  w.u64(std::uint64_t{1} << 63);
  w.f64(3.141592653589793);
  w.str("hello journal");
  w.str("");
  CellReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), std::uint64_t{1} << 63);
  EXPECT_EQ(r.f64(), 3.141592653589793);
  EXPECT_EQ(r.str(), "hello journal");
  EXPECT_EQ(r.str(), "");
  r.expect_end();
}

TEST(CellCodec, DoublesRoundTripBitExactly) {
  // Byte-identical resume means NaN payloads, signed zero, denormals and
  // infinities must all survive the trip with their exact bit patterns.
  const std::vector<double> specials{
      0.0, -0.0, std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::max(), 0.1};
  CellWriter w;
  encode_f64_vec(w, specials);
  CellReader r(w.bytes());
  const std::vector<double> back = decode_f64_vec(r);
  r.expect_end();
  ASSERT_EQ(back.size(), specials.size());
  for (std::size_t i = 0; i < specials.size(); ++i)
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back[i]),
              std::bit_cast<std::uint64_t>(specials[i]))
        << "element " << i;
}

TEST(CellCodec, TruncationAtEveryByteIsStructured) {
  CellWriter w;
  w.u32(7);
  w.str("payload");
  w.f64(2.5);
  const std::string& whole = w.bytes();
  for (std::size_t cut = 0; cut < whole.size(); ++cut) {
    CellReader r(std::string_view(whole).substr(0, cut));
    try {
      (void)r.u32();
      (void)r.str();
      (void)r.f64();
      r.expect_end();
      FAIL() << "decoded a payload truncated to " << cut << " of "
             << whole.size() << " bytes";
    } catch (const PpgException& e) {
      EXPECT_EQ(e.error().code, ErrorCode::kCorruptTrace) << "cut=" << cut;
    }
  }
}

TEST(CellCodec, TrailingBytesAreStructured) {
  CellWriter w;
  w.u64(1);
  std::string bytes = w.bytes();
  bytes += "stale";
  CellReader r(bytes);
  (void)r.u64();
  try {
    r.expect_end();
    FAIL() << "accepted trailing bytes";
  } catch (const PpgException& e) {
    EXPECT_EQ(e.error().code, ErrorCode::kCorruptTrace);
    EXPECT_NE(e.error().message.find("trailing"), std::string::npos);
  }
}

TEST(CellCodec, HostileVectorLengthRejectedBeforeAllocating) {
  // A corrupt 2^61 length would be a 2^64-byte reserve if trusted.
  CellWriter w;
  w.u64(std::uint64_t{1} << 61);
  w.f64(1.0);  // far fewer payload bytes than the length claims
  CellReader r(w.bytes());
  try {
    (void)decode_f64_vec(r);
    FAIL() << "accepted an impossible vector length";
  } catch (const PpgException& e) {
    EXPECT_EQ(e.error().code, ErrorCode::kCorruptTrace);
    EXPECT_NE(e.error().message.find("length"), std::string::npos);
  }
}

TEST(CellCodec, HostileStringLengthRejected) {
  CellWriter w;
  w.u64(std::uint64_t{1} << 60);  // string length prefix, no payload
  CellReader r(w.bytes());
  EXPECT_THROW((void)r.str(), PpgException);
}

TEST(CellCodec, SummaryRoundTripPreservesWelfordState) {
  Summary s;
  for (const double x : {3.5, -1.25, 7.0, 0.125, 99.875}) s.add(x);
  CellWriter w;
  encode_summary(w, s);
  CellReader r(w.bytes());
  const Summary back = decode_summary(r);
  r.expect_end();
  EXPECT_EQ(back.count(), s.count());
  EXPECT_EQ(std::bit_cast<std::uint64_t>(back.mean()),
            std::bit_cast<std::uint64_t>(s.mean()));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(back.m2()),
            std::bit_cast<std::uint64_t>(s.m2()));
  EXPECT_EQ(back.min(), s.min());
  EXPECT_EQ(back.max(), s.max());
  EXPECT_EQ(std::bit_cast<std::uint64_t>(back.stddev()),
            std::bit_cast<std::uint64_t>(s.stddev()));
}

TEST(CellCodec, RunStatusRoundTripsErrors) {
  Error e;
  e.code = ErrorCode::kCellBudgetExceeded;
  e.message = "engine exhausted its step budget";
  e.proc = 3;
  e.time = 12345;
  e.path = "/tmp/cell.ppgreplay";
  RunStatus status = RunStatus::failure(e);
  status.replay_dump_path = "/tmp/cell.ppgreplay";
  CellWriter w;
  encode_run_status(w, status);
  CellReader r(w.bytes());
  const RunStatus back = decode_run_status(r);
  r.expect_end();
  EXPECT_EQ(back.error.code, ErrorCode::kCellBudgetExceeded);
  EXPECT_EQ(back.error.message, status.error.message);
  EXPECT_EQ(back.error.proc, status.error.proc);
  EXPECT_EQ(back.error.time, status.error.time);
  EXPECT_EQ(back.error.path, status.error.path);
  EXPECT_EQ(back.replay_dump_path, status.replay_dump_path);
}

}  // namespace
}  // namespace ppg
