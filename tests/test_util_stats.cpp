#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/stats.hpp"

namespace ppg {
namespace {

TEST(Summary, EmptySummaryIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Summary, SingleValue) {
  Summary s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Summary, KnownMoments) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, NumericallyStableForShiftedData) {
  Summary s;
  const double base = 1e12;
  for (double x : {base + 1, base + 2, base + 3}) s.add(x);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(LinearFitTest, PerfectLine) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{3, 5, 7, 9};  // y = 2x + 1
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LinearFitTest, ConstantYGivesZeroSlope) {
  const std::vector<double> xs{1, 2, 3};
  const std::vector<double> ys{4, 4, 4};
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 4.0, 1e-12);
}

TEST(LinearFitTest, NoisyLineRecoversSlope) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 1; i <= 50; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i + ((i % 2 == 0) ? 0.5 : -0.5));
  }
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 0.01);
  EXPECT_GT(fit.r_squared, 0.999);
}

TEST(LogFitTest, LogarithmicGrowthHasUnitSlope) {
  // ratio = 2*log2(p) + 1 should fit with slope 2.
  std::vector<double> ps;
  std::vector<double> ratios;
  for (double p : {2.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
    ps.push_back(p);
    ratios.push_back(2.0 * std::log2(p) + 1.0);
  }
  const LinearFit fit = fit_log2(ps, ratios);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-9);
}

TEST(QuantileTest, MedianAndExtremes) {
  std::vector<double> v{5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
}

TEST(QuantileTest, InterpolatesBetweenValues) {
  std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 0.75), 7.5);
}

}  // namespace
}  // namespace ppg
