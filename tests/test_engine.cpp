#include <gtest/gtest.h>

#include <vector>

#include "core/parallel_engine.hpp"
#include "core/simple_schedulers.hpp"
#include "test_helpers.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"

namespace ppg {
namespace {

MultiTrace small_workload(ProcId p, std::size_t len) {
  MultiTrace mt;
  for (ProcId i = 0; i < p; ++i)
    mt.add(gen::rebase_to_proc(gen::cyclic(4 + i, len), i));
  return mt;
}

EngineConfig config_for(Height k, Time s) {
  EngineConfig c;
  c.cache_size = k;
  c.miss_cost = s;
  return c;
}

TEST(Engine, ServesEveryRequestExactlyOnce) {
  const MultiTrace mt = small_workload(4, 500);
  auto scheduler = make_static_partition();
  const ParallelRunResult r = run_parallel(mt, *scheduler, config_for(16, 4));
  EXPECT_EQ(r.hits + r.misses, mt.total_requests());
}

TEST(Engine, MakespanIsMaxCompletion) {
  const MultiTrace mt = small_workload(3, 300);
  auto scheduler = make_equi_partition();
  const ParallelRunResult r = run_parallel(mt, *scheduler, config_for(16, 4));
  Time max_c = 0;
  for (Time c : r.completion) max_c = std::max(max_c, c);
  EXPECT_EQ(r.makespan, max_c);
  EXPECT_LE(r.mean_completion, static_cast<double>(r.makespan));
}

TEST(Engine, MakespanAtLeastTrivialLowerBound) {
  const MultiTrace mt = small_workload(4, 400);
  auto scheduler = make_equi_partition();
  const ParallelRunResult r = run_parallel(mt, *scheduler, config_for(32, 4));
  EXPECT_GE(r.makespan, mt.max_length());
}

TEST(Engine, EmptyTracesCompleteAtZero) {
  MultiTrace mt;
  mt.add(Trace{});
  mt.add(gen::rebase_to_proc(gen::cyclic(4, 100), 1));
  auto scheduler = make_equi_partition();
  const ParallelRunResult r = run_parallel(mt, *scheduler, config_for(8, 2));
  EXPECT_EQ(r.completion[0], 0u);
  EXPECT_GT(r.completion[1], 0u);
}

TEST(Engine, SingleProcessorMatchesDedicatedCache) {
  // One processor under STATIC gets k/1 = k forever with no resets: its
  // time must equal plain LRU(k) time.
  const Trace base = gen::cyclic(6, 300);
  MultiTrace mt;
  mt.add(base);
  auto scheduler = make_static_partition();
  const ParallelRunResult r = run_parallel(mt, *scheduler, config_for(8, 5));
  // 6 cold misses + 294 hits.
  EXPECT_EQ(r.misses, 6u);
  EXPECT_EQ(r.makespan, 6u * 5u + 294u);
}

TEST(Engine, DeterministicAcrossRuns) {
  const MultiTrace mt = small_workload(5, 400);
  for (int trial = 0; trial < 2; ++trial) {
    auto s1 = make_equi_partition();
    auto s2 = make_equi_partition();
    const ParallelRunResult a = run_parallel(mt, *s1, config_for(16, 3));
    const ParallelRunResult b = run_parallel(mt, *s2, config_for(16, 3));
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.completion, b.completion);
    EXPECT_EQ(a.total_impact, b.total_impact);
  }
}

TEST(Engine, OnBoxObserverSeesEveryBox) {
  const MultiTrace mt = small_workload(3, 200);
  auto scheduler = make_equi_partition();
  EngineConfig c = config_for(8, 3);
  std::uint64_t observed = 0;
  c.on_box = [&](ProcId, const BoxAssignment&) { ++observed; };
  const ParallelRunResult r = run_parallel(mt, *scheduler, c);
  EXPECT_EQ(observed, r.num_boxes);
  EXPECT_GT(observed, 0u);
}

TEST(Engine, MemoryTimelineTracksPeak) {
  const MultiTrace mt = small_workload(4, 200);
  auto scheduler = make_static_partition();
  const ParallelRunResult r = run_parallel(mt, *scheduler, config_for(16, 3));
  // STATIC allocates 4 slices of height 4 concurrently.
  EXPECT_GT(r.peak_concurrent_height, 0u);
  EXPECT_LE(r.peak_concurrent_height, 16u);
  EXPECT_GT(r.effective_augmentation, 0.0);
  EXPECT_LE(r.effective_augmentation, 1.0);
}

TEST(Engine, RejectsMisbehavingScheduler) {
  // A scheduler that emits boxes in the past must trip the validation.
  class BadScheduler final : public BoxScheduler {
   public:
    void start(const SchedulerContext&, const EngineView&) override {}
    BoxAssignment next_box(ProcId, Time now, const EngineView&) override {
      return BoxAssignment{1, now == 0 ? 0 : now - 1, now + 1};
    }
    const char* name() const override { return "BAD"; }
  };
  MultiTrace mt;
  mt.add(gen::single_use(10));
  BadScheduler bad;
  EXPECT_DEATH(run_parallel(mt, bad, config_for(4, 2)), "");
}

TEST(Engine, StallAccounting) {
  // A scheduler that always defers by 5 ticks accumulates stall.
  class Deferring final : public BoxScheduler {
   public:
    void start(const SchedulerContext& ctx, const EngineView&) override {
      s_ = ctx.miss_cost;
    }
    BoxAssignment next_box(ProcId, Time now, const EngineView&) override {
      return BoxAssignment{4, now + 5, now + 5 + 8 * s_};
    }
    const char* name() const override { return "DEFER"; }

   private:
    Time s_ = 1;
  };
  MultiTrace mt;
  mt.add(gen::single_use(16));
  Deferring scheduler;
  const ParallelRunResult r = run_parallel(mt, scheduler, config_for(8, 2));
  EXPECT_GE(r.total_stall, 5u);  // at least the first deferral
  EXPECT_EQ(r.misses, 16u);
}

}  // namespace
}  // namespace ppg
