#include <gtest/gtest.h>

#include <map>

#include "core/parallel_engine.hpp"
#include "core/scheduler_factory.hpp"
#include "opt/offline_packer.hpp"
#include "opt/opt_bounds.hpp"
#include "trace/generators.hpp"
#include "trace/workload.hpp"

namespace ppg {
namespace {

OfflinePackConfig config_for(Height k, Time s) {
  OfflinePackConfig c;
  c.cache_size = k;
  c.miss_cost = s;
  return c;
}

TEST(OfflinePacker, SingleProcessorMatchesGreenOptTime) {
  // With one processor there is nothing to pack: the makespan is the
  // optimal profile's own duration.
  MultiTrace mt;
  mt.add(gen::cyclic(6, 500));
  const OfflinePackResult r = pack_offline(mt, config_for(8, 5));
  EXPECT_EQ(r.completion.size(), 1u);
  EXPECT_EQ(r.makespan, r.completion[0]);
  EXPECT_GT(r.makespan, 0u);
  EXPECT_LE(r.peak_height, 8u);
}

TEST(OfflinePacker, RespectsCacheBudgetExactly) {
  WorkloadParams wp;
  wp.num_procs = 6;
  wp.cache_size = 16;
  wp.requests_per_proc = 600;
  const MultiTrace mt = make_workload(WorkloadKind::kHeterogeneousMix, wp);
  const OfflinePackResult r = pack_offline(mt, config_for(16, 4));
  EXPECT_LE(r.peak_height, 16u);
  // Sanity on the witness: recompute concurrent height from the schedule.
  std::map<Time, std::int64_t> deltas;
  for (const PackedBox& pb : r.schedule) {
    deltas[pb.start] += pb.box.height;
    deltas[pb.start + pb.box.duration] -= pb.box.height;
  }
  std::int64_t level = 0;
  for (const auto& [t, d] : deltas) {
    level += d;
    EXPECT_LE(level, 16);
    EXPECT_GE(level, 0);
  }
}

TEST(OfflinePacker, PreservesPerProcessorBoxOrder) {
  WorkloadParams wp;
  wp.num_procs = 4;
  wp.cache_size = 16;
  wp.requests_per_proc = 400;
  const MultiTrace mt = make_workload(WorkloadKind::kZipf, wp);
  const OfflinePackResult r = pack_offline(mt, config_for(16, 4));
  std::map<ProcId, Time> last_end;
  for (const PackedBox& pb : r.schedule) {
    const auto it = last_end.find(pb.proc);
    if (it != last_end.end()) {
      EXPECT_GE(pb.start, it->second);
    }
    last_end[pb.proc] = pb.start + pb.box.duration;
  }
}

TEST(OfflinePacker, BracketsTheLowerBound) {
  // T_LB <= T_pack on every workload — the whole point of the bracket.
  WorkloadParams wp;
  wp.num_procs = 8;
  wp.cache_size = 32;
  wp.requests_per_proc = 800;
  wp.seed = 5;
  for (const WorkloadKind kind : all_workload_kinds()) {
    const MultiTrace mt = make_workload(kind, wp);
    OptBoundsConfig oc;
    oc.cache_size = 32;
    oc.miss_cost = 4;
    const OptBounds lb = compute_opt_bounds(mt, oc);
    const OfflinePackResult ub = pack_offline(mt, config_for(32, 4));
    EXPECT_GE(ub.makespan, lb.lower_bound()) << workload_kind_name(kind);
  }
}

TEST(OfflinePacker, FallbackProfileAlsoLegal) {
  MultiTrace mt;
  mt.add(gen::rebase_to_proc(gen::cyclic(10, 3000), 0));
  mt.add(gen::rebase_to_proc(gen::single_use(2000), 1));
  OfflinePackConfig c = config_for(16, 4);
  c.exact_profile_max_requests = 100;  // force the fixed-height fallback
  const OfflinePackResult r = pack_offline(mt, c);
  EXPECT_LE(r.peak_height, 16u);
  EXPECT_GT(r.makespan, 0u);
  // The fallback bound dominates the exact one.
  const OfflinePackResult exact = pack_offline(mt, config_for(16, 4));
  EXPECT_GE(r.total_impact, exact.total_impact);
}

TEST(OfflinePacker, EmptyTracesCompleteAtZero) {
  MultiTrace mt;
  mt.add(Trace{});
  mt.add(gen::rebase_to_proc(gen::cyclic(3, 50), 1));
  const OfflinePackResult r = pack_offline(mt, config_for(8, 3));
  EXPECT_EQ(r.completion[0], 0u);
  EXPECT_GT(r.completion[1], 0u);
}

TEST(OfflinePacker, ParallelismBeatsSerialization) {
  // Two light processors must overlap: makespan well under the sum of
  // their individual profile durations.
  MultiTrace mt;
  mt.add(gen::rebase_to_proc(gen::cyclic(3, 400), 0));
  mt.add(gen::rebase_to_proc(gen::cyclic(3, 400), 1));
  const OfflinePackResult r = pack_offline(mt, config_for(16, 4));
  Time serial = 0;
  for (const PackedBox& pb : r.schedule) serial += pb.box.duration;
  EXPECT_LT(r.makespan, serial * 3 / 4);
}

}  // namespace
}  // namespace ppg
