// EngineStepper is the engine's event loop inverted into a resumable
// state machine, and ParallelEngine::run()/run_checked() are thin loops
// over it. These tests pin the three contracts that inversion added:
//
//  - equivalence: batch run(), a manual step-until-done loop, and a
//    PagingService-style interleaving of accessor calls between steps all
//    produce byte-identical results;
//  - the event budget counts *events* (box grants + completions +
//    arrivals), not requests and not batches, and the units consumed are
//    surfaced whether or not a budget is set;
//  - online arrival/departure: EngineView::for_each_active stays exact
//    after every step, DET-PAR / RAND-PAR / GLOBAL-LRU re-phase instead of
//    aborting when the active set changes mid-run, and any fixed
//    add/depart/step script is deterministic at every engine_threads
//    value.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/global_lru.hpp"
#include "core/parallel_engine.hpp"
#include "core/scheduler_factory.hpp"
#include "trace/generators.hpp"
#include "trace/workload.hpp"
#include "util/thread_pool.hpp"

namespace ppg {
namespace {

WorkloadParams study_params() {
  WorkloadParams wp;
  wp.num_procs = 6;
  wp.cache_size = 32;
  wp.requests_per_proc = 400;
  wp.seed = 23;
  return wp;
}

std::unique_ptr<BoxScheduler> build(const std::string& name,
                                    std::uint64_t seed) {
  if (name == "GLOBAL-LRU") return make_global_lru_box_facade();
  if (name == "RAND-PAR") return make_scheduler(SchedulerKind::kRandPar, seed);
  return make_scheduler(SchedulerKind::kDetPar, seed);
}

void expect_identical(const ParallelRunResult& got,
                      const ParallelRunResult& want,
                      const std::string& label) {
  EXPECT_EQ(got.makespan, want.makespan) << label;
  EXPECT_EQ(got.completion, want.completion) << label;
  EXPECT_EQ(got.mean_completion, want.mean_completion) << label;
  EXPECT_EQ(got.hits, want.hits) << label;
  EXPECT_EQ(got.misses, want.misses) << label;
  EXPECT_EQ(got.num_boxes, want.num_boxes) << label;
  EXPECT_EQ(got.total_stall, want.total_stall) << label;
  EXPECT_EQ(got.total_impact, want.total_impact) << label;
  EXPECT_EQ(got.peak_concurrent_height, want.peak_concurrent_height) << label;
  EXPECT_EQ(got.effective_augmentation, want.effective_augmentation) << label;
}

/// Drives a stepper over the whole workload exactly as run_impl does.
CheckedRun step_until_done(const MultiTraceSource& sources,
                           BoxScheduler& scheduler,
                           const EngineConfig& config,
                           bool poke_accessors_between_steps = false) {
  EngineStepper stepper(scheduler, config);
  for (ProcId i = 0; i < sources.num_procs(); ++i)
    stepper.add_processor(sources.source_ptr(i));
  stepper.start();
  while (stepper.step()) {
    if (poke_accessors_between_steps) {
      // A service inspects state between batches; none of these may
      // perturb the run.
      (void)stepper.now();
      (void)stepper.active_count();
      (void)stepper.last_completions();
      stepper.view().for_each_active([&](ProcId proc) {
        (void)stepper.proc_hits(proc);
        (void)stepper.proc_misses(proc);
      });
    }
  }
  return stepper.finish();
}

TEST(EngineStepperTest, StepUntilDoneMatchesBatchRun) {
  const MultiTraceSource sources =
      make_workload_source(WorkloadKind::kHeterogeneousMix, study_params());
  for (const std::string name : {"DET-PAR", "RAND-PAR", "GLOBAL-LRU"}) {
    EngineConfig ec;
    ec.cache_size = study_params().cache_size;
    ec.miss_cost = 8;
    const auto batch_sched = build(name, 7);
    ParallelEngine engine(sources, *batch_sched, ec);
    const CheckedRun batch = engine.run_checked();
    ASSERT_TRUE(batch.status.ok()) << name;

    for (const bool poke : {false, true}) {
      const auto sched = build(name, 7);
      const CheckedRun stepped = step_until_done(sources, *sched, ec, poke);
      ASSERT_TRUE(stepped.status.ok()) << name;
      expect_identical(stepped.result, batch.result,
                       name + (poke ? " poked" : " plain"));
      EXPECT_EQ(stepped.events_consumed, batch.events_consumed) << name;
    }
  }
}

TEST(EngineStepperTest, EventBudgetCountsEventsNotRequests) {
  // 4 procs x 200 requests: the request count dwarfs the event count, so a
  // budget keyed to requests would trip immediately. The consumed units
  // must equal boxes + completions exactly — and must be reported even
  // with no budget set.
  WorkloadParams wp = study_params();
  wp.num_procs = 4;
  wp.requests_per_proc = 200;
  const MultiTraceSource sources =
      make_workload_source(WorkloadKind::kHomogeneousCyclic, wp);
  EngineConfig ec;
  ec.cache_size = wp.cache_size;
  ec.miss_cost = 8;

  auto sched = build("DET-PAR", 3);
  ParallelEngine engine(sources, *sched, ec);
  const CheckedRun clean = engine.run_checked();
  ASSERT_TRUE(clean.status.ok());
  EXPECT_EQ(clean.events_consumed,
            clean.result.num_boxes + wp.num_procs);
  EXPECT_GT(clean.result.hits + clean.result.misses, clean.events_consumed)
      << "requests must outnumber events for this test to mean anything";

  // An exact budget passes...
  ec.max_events = clean.events_consumed;
  auto sched_exact = build("DET-PAR", 3);
  ParallelEngine exact(sources, *sched_exact, ec);
  const CheckedRun at_budget = exact.run_checked();
  EXPECT_TRUE(at_budget.status.ok());
  EXPECT_EQ(at_budget.events_consumed, clean.events_consumed);

  // ...one unit less fails with kCellBudgetExceeded, and the consumed
  // count includes the charge that tripped the limit.
  ec.max_events = clean.events_consumed - 1;
  auto sched_short = build("DET-PAR", 3);
  ParallelEngine short_run(sources, *sched_short, ec);
  const CheckedRun over = short_run.run_checked();
  ASSERT_FALSE(over.status.ok());
  EXPECT_EQ(over.status.error.code, ErrorCode::kCellBudgetExceeded);
  EXPECT_EQ(over.events_consumed, ec.max_events + 1);
}

TEST(EngineStepperTest, EmptyCohortIsDoneImmediately) {
  EngineConfig ec;
  ec.cache_size = 16;
  ec.miss_cost = 4;
  auto sched = build("DET-PAR", 1);
  EngineStepper stepper(*sched, ec);
  stepper.start();
  EXPECT_FALSE(stepper.step());
  EXPECT_TRUE(stepper.done());
  const CheckedRun run = stepper.finish();
  EXPECT_TRUE(run.status.ok());
  EXPECT_EQ(run.result.makespan, 0u);
}

// Ground truth for the active set: procs whose arrival batch has run and
// that have not yet completed/departed.
class ActiveSetOracle {
 public:
  void admitted(ProcId proc, Time arrival) { arrivals_[proc] = arrival; }

  void observe(const EngineStepper& stepper) {
    for (const StepCompletion& c : stepper.last_completions())
      finished_.insert(c.proc);
    std::set<ProcId> want;
    for (const auto& [proc, arrival] : arrivals_)
      if (arrival <= stepper.now() && !finished_.contains(proc))
        want.insert(proc);
    std::set<ProcId> got;
    stepper.view().for_each_active([&](ProcId proc) { got.insert(proc); });
    EXPECT_EQ(got, want) << "at t=" << stepper.now();
    EXPECT_EQ(stepper.active_count(), got.size());
  }

 private:
  std::map<ProcId, Time> arrivals_;
  std::set<ProcId> finished_;
};

TEST(EngineStepperTest, ForEachActiveIsExactUnderArrivalAndDeparture) {
  for (const std::string name : {"DET-PAR", "RAND-PAR", "GLOBAL-LRU"}) {
    EngineConfig ec;
    ec.cache_size = 32;
    ec.miss_cost = 8;
    const auto sched = build(name, 9);
    EngineStepper stepper(*sched, ec);
    ActiveSetOracle oracle;

    for (int i = 0; i < 2; ++i) {
      const ProcId proc = stepper.add_processor(gen::cyclic_source(17, 300));
      oracle.admitted(proc, 0);
    }
    stepper.start();

    int steps = 0;
    bool more = true;
    while (more) {
      more = stepper.step();
      oracle.observe(stepper);
      ++steps;
      if (steps == 3) {
        // Two late arrivals in the same future batch...
        const Time at = stepper.now() + 5;
        for (int i = 0; i < 2; ++i) {
          const ProcId proc =
              stepper.add_processor(gen::zipf_source(64, 400, 0.9, Rng(4)),
                                    at);
          oracle.admitted(proc, at);
          more = true;
        }
      }
      if (steps == 8) {
        // ...and a forced departure of an initial-cohort processor. It
        // leaves at its next box boundary, which the oracle sees as an
        // ordinary completion.
        stepper.depart(0);
      }
    }
    EXPECT_TRUE(stepper.done()) << name;
    const CheckedRun run = stepper.finish();
    EXPECT_TRUE(run.status.ok()) << name;
    // All four processors completed (one by departure).
    ASSERT_EQ(run.result.completion.size(), 4u) << name;
  }
}

TEST(EngineStepperTest, DepartBeforeArrivalNeverActivates) {
  EngineConfig ec;
  ec.cache_size = 16;
  ec.miss_cost = 4;
  const auto sched = build("DET-PAR", 2);
  EngineStepper stepper(*sched, ec);
  stepper.add_processor(gen::cyclic_source(8, 100));
  stepper.start();
  const ProcId late = stepper.add_processor(gen::cyclic_source(8, 100), 50);
  stepper.depart(late);

  bool late_departed = false;
  while (stepper.step()) {
    for (const StepCompletion& c : stepper.last_completions()) {
      if (c.proc == late) {
        EXPECT_TRUE(c.departed);
        late_departed = true;
      }
    }
  }
  for (const StepCompletion& c : stepper.last_completions()) {
    if (c.proc == late) {
      EXPECT_TRUE(c.departed);
      late_departed = true;
    }
  }
  EXPECT_TRUE(late_departed);
  EXPECT_EQ(stepper.proc_hits(late), 0u);
  EXPECT_EQ(stepper.proc_misses(late), 0u);
  const CheckedRun run = stepper.finish();
  EXPECT_TRUE(run.status.ok());
}

/// Runs a fixed arrival/departure script and returns the final metrics.
CheckedRun run_script(const std::string& sched_name, std::size_t threads) {
  EngineConfig ec;
  ec.cache_size = 32;
  ec.miss_cost = 8;
  ec.engine_threads = threads;
  const auto sched = build(sched_name, 13);
  EngineStepper stepper(*sched, ec);
  for (std::size_t i = 0; i < 3; ++i)
    stepper.add_processor(gen::cyclic_source(17, 200 + 40 * i));
  stepper.start();

  int steps = 0;
  bool more = true;
  while (more) {
    more = stepper.step();
    ++steps;
    if (steps == 2) {
      stepper.add_processor(gen::sawtooth_source(4, 32, 80, 3, Rng(5)),
                            stepper.now() + 3);
      more = true;
    }
    if (steps == 5) stepper.depart(1);
    if (steps == 7) {
      stepper.add_processor(gen::single_use_source(120), stepper.now() + 1);
      more = true;
    }
  }
  return stepper.finish();
}

TEST(EngineStepperTest, ArrivalScriptsAreDeterministicAtEveryThreadCount) {
  for (const std::string name : {"DET-PAR", "RAND-PAR", "GLOBAL-LRU"}) {
    const CheckedRun want = run_script(name, 0);
    ASSERT_TRUE(want.status.ok()) << name;
    ASSERT_EQ(want.result.completion.size(), 5u) << name;
    for (const std::size_t threads :
         {std::size_t{0}, std::size_t{2}, ThreadPool::hardware_jobs()}) {
      const CheckedRun got = run_script(name, threads);
      ASSERT_TRUE(got.status.ok()) << name << " threads=" << threads;
      expect_identical(got.result, want.result,
                       name + " threads=" + std::to_string(threads));
      EXPECT_EQ(got.events_consumed, want.events_consumed) << name;
    }
  }
}

}  // namespace
}  // namespace ppg
