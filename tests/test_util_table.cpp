#include <gtest/gtest.h>

#include <sstream>

#include "util/table.hpp"

namespace ppg {
namespace {

TEST(TableTest, StoresCells) {
  Table t({"a", "b"});
  t.row().cell("x").cell(std::uint64_t{42});
  t.row().cell(1.5, 2).cell("y");
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.num_cols(), 2u);
  EXPECT_EQ(t.at(0, 0), "x");
  EXPECT_EQ(t.at(0, 1), "42");
  EXPECT_EQ(t.at(1, 0), "1.50");
}

TEST(TableTest, PrintAlignsColumns) {
  Table t({"name", "v"});
  t.row().cell("long-name-here").cell(1);
  t.row().cell("x").cell(22);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // Header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("long-name-here"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TableTest, CsvRoundtripSimple) {
  Table t({"a", "b"});
  t.row().cell("1").cell("2");
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(TableTest, CsvEscaping) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("has,comma"), "\"has,comma\"");
  EXPECT_EQ(csv_escape("has\"quote"), "\"has\"\"quote\"");
  EXPECT_EQ(csv_escape("has\nnewline"), "\"has\nnewline\"");
}

TEST(TableTest, DoublePrecisionControl) {
  Table t({"v"});
  t.row().cell(3.14159, 4);
  EXPECT_EQ(t.at(0, 0), "3.1416");
}

}  // namespace
}  // namespace ppg
