#include <gtest/gtest.h>

#include "paging/cache_sim.hpp"
#include "test_helpers.hpp"
#include "trace/generators.hpp"

namespace ppg {
namespace {

TEST(CacheSimTest, TimingModel) {
  // 2 misses + 1 hit at s = 5: time = 2*5 + 1 = 11.
  const Trace t = test::make_trace({1, 2, 1});
  const CacheSimResult r = simulate_policy(PolicyKind::kLru, t, 2, 5);
  EXPECT_EQ(r.misses, 2u);
  EXPECT_EQ(r.hits, 1u);
  EXPECT_EQ(r.time, 11u);
}

TEST(CacheSimTest, MissRate) {
  const Trace t = test::make_trace({1, 1, 1, 2});
  const CacheSimResult r = simulate_policy(PolicyKind::kLru, t, 2, 2);
  EXPECT_DOUBLE_EQ(r.miss_rate(), 0.5);
}

TEST(CacheSimTest, EmptyTraceZeroes) {
  const CacheSimResult r = simulate_policy(PolicyKind::kLru, Trace{}, 2, 2);
  EXPECT_EQ(r.accesses(), 0u);
  EXPECT_EQ(r.time, 0u);
  EXPECT_EQ(r.miss_rate(), 0.0);
}

TEST(CacheSimTest, RunResetsBetweenCalls) {
  const Trace t = test::make_trace({1, 2, 3});
  CacheSim sim(2, make_policy(PolicyKind::kLru, 2), 2);
  const CacheSimResult first = sim.run(t);
  const CacheSimResult second = sim.run(t);
  EXPECT_EQ(first.misses, second.misses);
  EXPECT_EQ(first.time, second.time);
}

TEST(CacheSimTest, IncrementalAccessMatchesRun) {
  const Trace t = test::make_trace({1, 2, 1, 3, 2, 1});
  CacheSim batch(2, make_policy(PolicyKind::kLru, 2), 3);
  const CacheSimResult batched = batch.run(t);

  CacheSim inc(2, make_policy(PolicyKind::kLru, 2), 3);
  for (PageId p : t) inc.access(p);
  EXPECT_EQ(inc.result().hits, batched.hits);
  EXPECT_EQ(inc.result().misses, batched.misses);
}

TEST(CacheSimTest, CapacityBoundsResidency) {
  // A working set larger than capacity must produce repeat misses.
  const Trace t = gen::cyclic(10, 100);
  const CacheSimResult r = simulate_policy(PolicyKind::kLru, t, 5, 2);
  EXPECT_EQ(r.misses, 100u);  // LRU thrashes on a cycle bigger than cache
}

}  // namespace
}  // namespace ppg
