#include <gtest/gtest.h>

#include <set>
#include <string>

#include "paging/cache_sim.hpp"
#include "test_helpers.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"

namespace ppg {
namespace {

TEST(MruPolicyTest, EvictsMostRecent) {
  // Capacity 2: after 1, 2, inserting 3 evicts 2 (the MRU).
  const Trace t = test::make_trace({1, 2, 3, 1});
  const CacheSimResult r = simulate_policy(PolicyKind::kMru, t, 2, 2);
  // 1 M, 2 M, 3 M (evicts 2), 1 H.
  EXPECT_EQ(r.misses, 3u);
  EXPECT_EQ(r.hits, 1u);
}

TEST(MruPolicyTest, NearOptimalOnCyclicScan) {
  // The classic: cycle of c+1 pages with cache c. LRU misses everything;
  // MRU stabilizes most of the cycle.
  const Trace t = gen::cyclic(9, 900);
  const CacheSimResult lru = simulate_policy(PolicyKind::kLru, t, 8, 2);
  const CacheSimResult mru = simulate_policy(PolicyKind::kMru, t, 8, 2);
  EXPECT_EQ(lru.misses, 900u);
  EXPECT_LT(mru.misses, 300u);
}

TEST(SlruPolicyTest, ScanDoesNotFlushHotSet) {
  // Build a hot set via repeated touches, then stream a scan through, then
  // return to the hot set: SLRU must retain (most of) it, plain LRU loses
  // it all.
  std::vector<PageId> reqs;
  for (int round = 0; round < 10; ++round)
    for (PageId hot = 0; hot < 4; ++hot) reqs.push_back(hot);
  for (PageId scan = 100; scan < 140; ++scan) reqs.push_back(scan);
  for (PageId hot = 0; hot < 4; ++hot) reqs.push_back(hot);
  const Trace t{std::vector<PageId>(reqs)};

  const CacheSimResult slru = simulate_policy(PolicyKind::kSlru, t, 8, 2);
  const CacheSimResult lru = simulate_policy(PolicyKind::kLru, t, 8, 2);
  // Final 4 hot accesses: all miss under LRU, mostly hit under SLRU.
  EXPECT_LT(slru.misses, lru.misses);
}

TEST(SlruPolicyTest, PromotionRequiresReReference) {
  // Single-touch pages stay probationary and are evicted first.
  const Trace t = test::make_trace({1, 1, 2, 3, 4, 1});
  // Capacity 3: 1 promoted (touched); 2, 3 probationary; 4 evicts
  // probationary LRU (2); final 1 hits.
  const CacheSimResult r = simulate_policy(PolicyKind::kSlru, t, 3, 2);
  EXPECT_EQ(r.hits, 2u);  // second 1 and final 1
  EXPECT_EQ(r.misses, 4u);
}

TEST(ArcPolicyTest, BasicHitsAndMisses) {
  const Trace t = test::make_trace({1, 2, 1, 3, 1, 2});
  const CacheSimResult r = simulate_policy(PolicyKind::kArc, t, 2, 2);
  EXPECT_EQ(r.hits + r.misses, t.size());
  EXPECT_GE(r.hits, 2u);  // the repeated 1s mostly hit
}

TEST(ArcPolicyTest, ScanResistant) {
  // Hot set + long scan mixed: ARC should beat LRU.
  Rng rng(3);
  std::vector<PageId> reqs;
  std::uint64_t scan_page = 1000;
  for (int i = 0; i < 4000; ++i) {
    if (i % 2 == 0)
      reqs.push_back(rng.next_below(6));  // hot set of 6
    else
      reqs.push_back(scan_page++);  // endless scan
  }
  const Trace t{std::vector<PageId>(reqs)};
  const CacheSimResult arc = simulate_policy(PolicyKind::kArc, t, 8, 2);
  const CacheSimResult lru = simulate_policy(PolicyKind::kLru, t, 8, 2);
  EXPECT_LT(arc.misses, lru.misses);
}

TEST(ArcPolicyTest, GhostHitAdaptsWithoutCrashing) {
  // Force B1 ghost hits: fill, evict, re-reference evicted pages.
  std::vector<PageId> reqs;
  for (PageId p = 0; p < 16; ++p) reqs.push_back(p);
  for (PageId p = 0; p < 16; ++p) reqs.push_back(p);
  const Trace t{std::vector<PageId>(reqs)};
  const CacheSimResult r = simulate_policy(PolicyKind::kArc, t, 4, 2);
  EXPECT_EQ(r.hits + r.misses, t.size());
}

// Extend the cross-cutting properties to the new policies.
class ExtraPolicyConservation : public ::testing::TestWithParam<PolicyKind> {
};

TEST_P(ExtraPolicyConservation, ServesEverythingOnce) {
  Rng rng(11);
  const Trace t = gen::zipf(64, 5000, 0.9, rng);
  for (const Height capacity : {1u, 3u, 8u, 32u}) {
    const CacheSimResult r = simulate_policy(GetParam(), t, capacity, 3);
    EXPECT_EQ(r.hits + r.misses, t.size()) << "capacity " << capacity;
    EXPECT_EQ(r.time, r.hits + 3 * r.misses);
  }
}

TEST_P(ExtraPolicyConservation, BeladyStillDominates) {
  Rng rng(13);
  const Trace t = gen::sawtooth(4, 24, 300, 8, rng);
  for (const Height capacity : {2u, 8u, 16u}) {
    const auto belady = simulate_policy(PolicyKind::kBelady, t, capacity, 2);
    const auto other = simulate_policy(GetParam(), t, capacity, 2);
    EXPECT_LE(belady.misses, other.misses) << "capacity " << capacity;
  }
}

INSTANTIATE_TEST_SUITE_P(NewPolicies, ExtraPolicyConservation,
                         ::testing::Values(PolicyKind::kMru, PolicyKind::kSlru,
                                           PolicyKind::kArc));

TEST(MarkingPolicyTest, DeterministicPerSeed) {
  Rng rng(7);
  const Trace t = gen::zipf(40, 2000, 0.9, rng);
  const CacheSimResult a = simulate_policy(PolicyKind::kMarking, t, 8, 2, 42);
  const CacheSimResult b = simulate_policy(PolicyKind::kMarking, t, 8, 2, 42);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.hits, b.hits);
}

TEST(MarkingPolicyTest, BeatsLruAcrossPhaseBoundaries) {
  // Cycle of k+1 pages with cache k: every pass is exactly one marking
  // phase (k distinct pages), and every insert lands on the phase
  // boundary. LRU misses all 900 requests; randomized MARKING evicts a
  // uniform unmarked page instead of the deterministic worst one, keeping
  // its expected misses near the H_k-competitive bound, far below LRU.
  const Trace t = gen::cyclic(9, 900);
  const CacheSimResult lru = simulate_policy(PolicyKind::kLru, t, 8, 2);
  const CacheSimResult marking =
      simulate_policy(PolicyKind::kMarking, t, 8, 2, 3);
  EXPECT_EQ(lru.misses, 900u);
  EXPECT_LT(marking.misses, 600u);
}

TEST(MarkingPolicyTest, MarkedPagesSurviveWithinAPhase) {
  // Direct-drive: fill the cache (phase = 4 marked pages), then force one
  // eviction. The victim must come from the unmarked set the boundary
  // reset just created — i.e. it must be resident — and the policy's
  // residency view must stay consistent throughout.
  const auto policy = make_marking_policy(4, 11);
  for (PageId page = 1; page <= 4; ++page) policy->insert(page);
  for (PageId page = 1; page <= 4; ++page) EXPECT_TRUE(policy->contains(page));
  const PageId victim = policy->evict();
  EXPECT_GE(victim, 1u);
  EXPECT_LE(victim, 4u);
  EXPECT_FALSE(policy->contains(victim));
  policy->insert(5);
  // 5 entered marked after the boundary: the next two evictions must spare
  // it (three unmarked survivors remain).
  const PageId v1 = policy->evict();
  const PageId v2 = policy->evict();
  EXPECT_NE(v1, 5u);
  EXPECT_NE(v2, 5u);
  EXPECT_NE(v1, v2);
  EXPECT_TRUE(policy->contains(5));
}

TEST(MarkingPolicyTest, TouchProtectsForTheRestOfThePhase) {
  // Capacity 4, residents {1,2,3,4}, one eviction opens the phase; touch
  // two survivors and evict until only marked pages remain: the marked
  // ones must be exactly the survivors.
  const auto policy = make_marking_policy(4, 5);
  for (PageId page = 1; page <= 4; ++page) policy->insert(page);
  (void)policy->evict();  // Phase boundary: all unmarked, one gone.
  std::vector<PageId> survivors;
  for (PageId page = 1; page <= 4; ++page)
    if (policy->touch_if_resident(page)) survivors.push_back(page);
  ASSERT_EQ(survivors.size(), 3u);
  // The third resident... all three survivors are now marked; no unmarked
  // page remains, so the next eviction is a fresh phase boundary and may
  // pick any of them — but until then, inserts after evictions never
  // displace a marked page while unmarked ones exist.
  policy->insert(99);  // Marked; cache back to 4 residents.
  EXPECT_TRUE(policy->contains(99));
}

TEST(PolicyKindList, ContainsAllTenAndUniqueNames) {
  const auto kinds = all_policy_kinds();
  EXPECT_EQ(kinds.size(), 10u);
  std::set<std::string> names;
  for (const PolicyKind kind : kinds) {
    names.insert(policy_kind_name(kind));
    EXPECT_NE(make_policy(kind, 4), nullptr);
  }
  EXPECT_EQ(names.size(), kinds.size());
}

}  // namespace
}  // namespace ppg
