#include <gtest/gtest.h>

#include <set>
#include <string>

#include "paging/cache_sim.hpp"
#include "test_helpers.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"

namespace ppg {
namespace {

TEST(MruPolicyTest, EvictsMostRecent) {
  // Capacity 2: after 1, 2, inserting 3 evicts 2 (the MRU).
  const Trace t = test::make_trace({1, 2, 3, 1});
  const CacheSimResult r = simulate_policy(PolicyKind::kMru, t, 2, 2);
  // 1 M, 2 M, 3 M (evicts 2), 1 H.
  EXPECT_EQ(r.misses, 3u);
  EXPECT_EQ(r.hits, 1u);
}

TEST(MruPolicyTest, NearOptimalOnCyclicScan) {
  // The classic: cycle of c+1 pages with cache c. LRU misses everything;
  // MRU stabilizes most of the cycle.
  const Trace t = gen::cyclic(9, 900);
  const CacheSimResult lru = simulate_policy(PolicyKind::kLru, t, 8, 2);
  const CacheSimResult mru = simulate_policy(PolicyKind::kMru, t, 8, 2);
  EXPECT_EQ(lru.misses, 900u);
  EXPECT_LT(mru.misses, 300u);
}

TEST(SlruPolicyTest, ScanDoesNotFlushHotSet) {
  // Build a hot set via repeated touches, then stream a scan through, then
  // return to the hot set: SLRU must retain (most of) it, plain LRU loses
  // it all.
  std::vector<PageId> reqs;
  for (int round = 0; round < 10; ++round)
    for (PageId hot = 0; hot < 4; ++hot) reqs.push_back(hot);
  for (PageId scan = 100; scan < 140; ++scan) reqs.push_back(scan);
  for (PageId hot = 0; hot < 4; ++hot) reqs.push_back(hot);
  const Trace t{std::vector<PageId>(reqs)};

  const CacheSimResult slru = simulate_policy(PolicyKind::kSlru, t, 8, 2);
  const CacheSimResult lru = simulate_policy(PolicyKind::kLru, t, 8, 2);
  // Final 4 hot accesses: all miss under LRU, mostly hit under SLRU.
  EXPECT_LT(slru.misses, lru.misses);
}

TEST(SlruPolicyTest, PromotionRequiresReReference) {
  // Single-touch pages stay probationary and are evicted first.
  const Trace t = test::make_trace({1, 1, 2, 3, 4, 1});
  // Capacity 3: 1 promoted (touched); 2, 3 probationary; 4 evicts
  // probationary LRU (2); final 1 hits.
  const CacheSimResult r = simulate_policy(PolicyKind::kSlru, t, 3, 2);
  EXPECT_EQ(r.hits, 2u);  // second 1 and final 1
  EXPECT_EQ(r.misses, 4u);
}

TEST(ArcPolicyTest, BasicHitsAndMisses) {
  const Trace t = test::make_trace({1, 2, 1, 3, 1, 2});
  const CacheSimResult r = simulate_policy(PolicyKind::kArc, t, 2, 2);
  EXPECT_EQ(r.hits + r.misses, t.size());
  EXPECT_GE(r.hits, 2u);  // the repeated 1s mostly hit
}

TEST(ArcPolicyTest, ScanResistant) {
  // Hot set + long scan mixed: ARC should beat LRU.
  Rng rng(3);
  std::vector<PageId> reqs;
  std::uint64_t scan_page = 1000;
  for (int i = 0; i < 4000; ++i) {
    if (i % 2 == 0)
      reqs.push_back(rng.next_below(6));  // hot set of 6
    else
      reqs.push_back(scan_page++);  // endless scan
  }
  const Trace t{std::vector<PageId>(reqs)};
  const CacheSimResult arc = simulate_policy(PolicyKind::kArc, t, 8, 2);
  const CacheSimResult lru = simulate_policy(PolicyKind::kLru, t, 8, 2);
  EXPECT_LT(arc.misses, lru.misses);
}

TEST(ArcPolicyTest, GhostHitAdaptsWithoutCrashing) {
  // Force B1 ghost hits: fill, evict, re-reference evicted pages.
  std::vector<PageId> reqs;
  for (PageId p = 0; p < 16; ++p) reqs.push_back(p);
  for (PageId p = 0; p < 16; ++p) reqs.push_back(p);
  const Trace t{std::vector<PageId>(reqs)};
  const CacheSimResult r = simulate_policy(PolicyKind::kArc, t, 4, 2);
  EXPECT_EQ(r.hits + r.misses, t.size());
}

// Extend the cross-cutting properties to the new policies.
class ExtraPolicyConservation : public ::testing::TestWithParam<PolicyKind> {
};

TEST_P(ExtraPolicyConservation, ServesEverythingOnce) {
  Rng rng(11);
  const Trace t = gen::zipf(64, 5000, 0.9, rng);
  for (const Height capacity : {1u, 3u, 8u, 32u}) {
    const CacheSimResult r = simulate_policy(GetParam(), t, capacity, 3);
    EXPECT_EQ(r.hits + r.misses, t.size()) << "capacity " << capacity;
    EXPECT_EQ(r.time, r.hits + 3 * r.misses);
  }
}

TEST_P(ExtraPolicyConservation, BeladyStillDominates) {
  Rng rng(13);
  const Trace t = gen::sawtooth(4, 24, 300, 8, rng);
  for (const Height capacity : {2u, 8u, 16u}) {
    const auto belady = simulate_policy(PolicyKind::kBelady, t, capacity, 2);
    const auto other = simulate_policy(GetParam(), t, capacity, 2);
    EXPECT_LE(belady.misses, other.misses) << "capacity " << capacity;
  }
}

INSTANTIATE_TEST_SUITE_P(NewPolicies, ExtraPolicyConservation,
                         ::testing::Values(PolicyKind::kMru, PolicyKind::kSlru,
                                           PolicyKind::kArc));

TEST(PolicyKindList, ContainsAllNineAndUniqueNames) {
  const auto kinds = all_policy_kinds();
  EXPECT_EQ(kinds.size(), 9u);
  std::set<std::string> names;
  for (const PolicyKind kind : kinds) {
    names.insert(policy_kind_name(kind));
    EXPECT_NE(make_policy(kind, 4), nullptr);
  }
  EXPECT_EQ(names.size(), kinds.size());
}

}  // namespace
}  // namespace ppg
