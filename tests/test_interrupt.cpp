// util/interrupt + thread-pool cooperation: the flag is async-signal-safe,
// the handler really sets it, and parallel_for_index drains in-flight work
// instead of aborting mid-cell. Raced under TSan by scripts/tier1.sh.
#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstddef>
#include <vector>

#include "util/interrupt.hpp"
#include "util/thread_pool.hpp"

namespace ppg {
namespace {

class Interrupt : public ::testing::Test {
 protected:
  void SetUp() override { clear_interrupt(); }
  void TearDown() override { clear_interrupt(); }
};

TEST_F(Interrupt, FlagRoundTrip) {
  EXPECT_FALSE(interrupt_requested());
  request_interrupt();
  EXPECT_TRUE(interrupt_requested());
  request_interrupt();  // idempotent
  EXPECT_TRUE(interrupt_requested());
  clear_interrupt();
  EXPECT_FALSE(interrupt_requested());
}

TEST_F(Interrupt, HandlerCatchesSigint) {
  install_interrupt_handler();
  ASSERT_FALSE(interrupt_requested());
  std::raise(SIGINT);  // delivered synchronously to this thread
  EXPECT_TRUE(interrupt_requested());
  clear_interrupt();
  std::raise(SIGTERM);
  EXPECT_TRUE(interrupt_requested());
}

TEST_F(Interrupt, SerialLoopStopsClaimingCells) {
  std::size_t executed = 0;
  parallel_for_index(1, 100, [&](std::size_t i) {
    ++executed;
    if (i == 9) request_interrupt();
  });
  // Cell 9 finished (drain, not abort); nothing after it was claimed.
  EXPECT_EQ(executed, 10u);
}

TEST_F(Interrupt, ParallelWorkersDrainAndStop) {
  std::atomic<std::size_t> executed{0};
  parallel_for_index(4, 10000, [&](std::size_t) {
    const std::size_t n = executed.fetch_add(1) + 1;
    if (n == 50) request_interrupt();
  });
  // Every in-flight cell ran to completion; the vast majority of the index
  // space was never claimed. The exact count depends on timing, but it is
  // bounded by the 50 pre-interrupt cells plus one in-flight cell per
  // worker.
  EXPECT_GE(executed.load(), 50u);
  EXPECT_LE(executed.load(), 54u);
}

TEST_F(Interrupt, InterruptedParallelForCompletesWholeCells) {
  // No torn cells: a claimed index always produces its side effect.
  std::vector<unsigned char> done(2000, 0);
  std::atomic<std::size_t> claimed{0};
  parallel_for_index(4, done.size(), [&](std::size_t i) {
    claimed.fetch_add(1);
    if (i == 100) request_interrupt();
    done[i] = 1;
  });
  std::size_t completed = 0;
  for (const unsigned char d : done) completed += d;
  EXPECT_EQ(completed, claimed.load());
}

}  // namespace
}  // namespace ppg
