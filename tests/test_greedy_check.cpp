#include <gtest/gtest.h>

#include "green/greedy_check.hpp"
#include "green/green_opt.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"

namespace ppg {
namespace {

constexpr HeightLadder kLadder{2, 16};
constexpr Time kS = 8;

TEST(GreedyCheck, EmptyTraceHasNoCheckpoints) {
  auto pager = make_det_green(kLadder);
  const GreedyCheckResult r =
      check_greedily_green(Trace{}, *pager, kLadder, kS);
  EXPECT_TRUE(r.checkpoints.empty());
  EXPECT_EQ(r.max_ratio, 0.0);
}

TEST(GreedyCheck, CheckpointsCoverTheTrace) {
  Rng rng(1);
  const Trace t = gen::zipf(16, 1200, 0.9, rng);
  auto pager = make_det_green(kLadder);
  const GreedyCheckResult r =
      check_greedily_green(t, *pager, kLadder, kS, 6);
  ASSERT_GE(r.checkpoints.size(), 1u);
  EXPECT_EQ(r.checkpoints.back().prefix_requests, t.size());
  for (std::size_t i = 1; i < r.checkpoints.size(); ++i) {
    EXPECT_GT(r.checkpoints[i].prefix_requests,
              r.checkpoints[i - 1].prefix_requests);
    // Both impacts are monotone in the prefix.
    EXPECT_GE(r.checkpoints[i].pager_impact,
              r.checkpoints[i - 1].pager_impact);
    EXPECT_GE(r.checkpoints[i].opt_impact,
              r.checkpoints[i - 1].opt_impact);
  }
}

TEST(GreedyCheck, RatiosAreAtLeastOne) {
  Rng rng(2);
  const Trace t = gen::sawtooth(2, 12, 200, 6, rng);
  auto pager = make_rand_green(kLadder, Rng(5));
  const GreedyCheckResult r =
      check_greedily_green(t, *pager, kLadder, kS, 4);
  for (const GreedyCheckpoint& cp : r.checkpoints)
    EXPECT_GE(cp.ratio, 1.0 - 1e-9);
}

// The paper's point: competitive online pagers are automatically greedily
// competitive (Definition 1) — every prefix is served within a bounded
// factor of that prefix's own optimum.
class OnlinePagersAreGreedilyGreen : public ::testing::TestWithParam<GreenKind> {
};

TEST_P(OnlinePagersAreGreedilyGreen, PrefixRatiosBounded) {
  Rng rng(3);
  const std::vector<Trace> traces{
      gen::cyclic(10, 800),
      gen::single_use(600),
      gen::zipf(24, 800, 1.0, rng),
  };
  for (const Trace& t : traces) {
    auto pager = make_green_pager(GetParam(), kLadder, Rng(7));
    const GreedyCheckResult r =
        check_greedily_green(t, *pager, kLadder, kS, 5);
    // Generous empirical bound: c * #rungs with slack one sweep of boxes.
    const double g = 4.0 * kLadder.num_heights();
    const Impact slack = static_cast<Impact>(kS) * 16 * 16 * 4;
    EXPECT_TRUE(r.is_greedily_competitive(g, slack))
        << green_kind_name(GetParam()) << " max ratio " << r.max_ratio;
  }
}

INSTANTIATE_TEST_SUITE_P(Pagers, OnlinePagersAreGreedilyGreen,
                         ::testing::Values(GreenKind::kRand, GreenKind::kDet));

TEST(GreedyCheck, FlagsAGreenwashingPager) {
  // FIXED-MAX on a single-use stream: every prefix is served at the top
  // height while OPT uses the bottom — the prefix ratio is ~h_max/h_min
  // at every checkpoint, which a tight g rejects.
  const Trace t = gen::single_use(600);
  auto pager = make_fixed_green(kLadder, kLadder.h_max);
  const GreedyCheckResult r =
      check_greedily_green(t, *pager, kLadder, kS, 4);
  EXPECT_GT(r.max_ratio, 4.0);
  EXPECT_FALSE(r.is_greedily_competitive(2.0, /*slack=*/0));
}

TEST(GreedyCheck, RejectsOffLadderPager) {
  // A pager whose reboot was forgotten emits heights outside the ladder;
  // the checker must refuse to evaluate garbage.
  auto pager = make_fixed_green(HeightLadder{4, 64}, 64);
  const Trace t = gen::single_use(64);
  EXPECT_DEATH(check_greedily_green(t, *pager, kLadder, kS, 2),
               "pager left the ladder");
}

}  // namespace
}  // namespace ppg
