#include <gtest/gtest.h>

#include <vector>

#include "util/discrete_distribution.hpp"
#include "util/rng.hpp"

namespace ppg {
namespace {

TEST(DiscreteDistribution, NormalizesWeights) {
  DiscreteDistribution d({1.0, 1.0, 2.0});
  EXPECT_EQ(d.num_outcomes(), 3u);
  EXPECT_NEAR(d.probability(0), 0.25, 1e-12);
  EXPECT_NEAR(d.probability(1), 0.25, 1e-12);
  EXPECT_NEAR(d.probability(2), 0.50, 1e-12);
}

TEST(DiscreteDistribution, SingleOutcome) {
  DiscreteDistribution d({5.0});
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(d.sample(rng), 0u);
}

TEST(DiscreteDistribution, ZeroWeightNeverSampled) {
  DiscreteDistribution d({1.0, 0.0, 1.0});
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) EXPECT_NE(d.sample(rng), 1u);
}

TEST(DiscreteDistribution, EmpiricalFrequenciesMatch) {
  // The paper's 1/j^2 shape over 4 rungs.
  std::vector<double> weights{1.0, 0.25, 0.0625, 0.015625};
  DiscreteDistribution d(weights);
  Rng rng(3);
  const int n = 200000;
  std::vector<int> counts(4, 0);
  for (int i = 0; i < n; ++i) ++counts[d.sample(rng)];
  for (std::size_t j = 0; j < 4; ++j) {
    const double expected = d.probability(j);
    const double observed = static_cast<double>(counts[j]) / n;
    EXPECT_NEAR(observed, expected, 0.01) << "outcome " << j;
  }
}

TEST(DiscreteDistribution, ProbabilitiesSumToOne) {
  DiscreteDistribution d({0.3, 0.1, 0.7, 0.9});
  double sum = 0;
  for (std::size_t i = 0; i < d.num_outcomes(); ++i) sum += d.probability(i);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

}  // namespace
}  // namespace ppg
