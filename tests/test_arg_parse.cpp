#include <gtest/gtest.h>

#include <stdexcept>

#include "core/scheduler_factory.hpp"
#include "trace/workload.hpp"
#include "util/arg_parse.hpp"
#include "util/error.hpp"

namespace ppg {
namespace {

ArgParser parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParser, EqualsForm) {
  const ArgParser args = parse({"--p=32", "--name=det"});
  EXPECT_EQ(args.get_int("p", 0), 32);
  EXPECT_EQ(args.get_string("name", ""), "det");
}

TEST(ArgParser, SpaceForm) {
  const ArgParser args = parse({"--p", "32", "--ratio", "1.5"});
  EXPECT_EQ(args.get_int("p", 0), 32);
  EXPECT_DOUBLE_EQ(args.get_double("ratio", 0.0), 1.5);
}

TEST(ArgParser, BooleanFlag) {
  const ArgParser args = parse({"--csv", "--verbose"});
  EXPECT_TRUE(args.get_bool("csv"));
  EXPECT_TRUE(args.get_bool("verbose"));
  EXPECT_FALSE(args.get_bool("missing"));
}

TEST(ArgParser, ExplicitBooleanValues) {
  const ArgParser args = parse({"--a=true", "--b=false", "--c=1", "--d=no"});
  EXPECT_TRUE(args.get_bool("a"));
  EXPECT_FALSE(args.get_bool("b"));
  EXPECT_TRUE(args.get_bool("c"));
  EXPECT_FALSE(args.get_bool("d"));
}

TEST(ArgParser, FallbacksWhenAbsent) {
  const ArgParser args = parse({});
  EXPECT_EQ(args.get_int("p", 7), 7);
  EXPECT_EQ(args.get_string("w", "x"), "x");
  EXPECT_DOUBLE_EQ(args.get_double("d", 2.5), 2.5);
}

TEST(ArgParser, PositionalArguments) {
  const ArgParser args = parse({"file1", "--p=2", "file2"});
  EXPECT_EQ(args.positional(),
            (std::vector<std::string>{"file1", "file2"}));
}

TEST(ArgParser, RejectsMalformedNumbers) {
  const ArgParser args = parse({"--p=12x", "--d=1.2.3", "--b=maybe"});
  EXPECT_THROW(args.get_int("p", 0), PpgException);
  EXPECT_THROW(args.get_double("d", 0.0), PpgException);
  EXPECT_THROW(args.get_bool("b"), PpgException);
}

TEST(ArgParser, MalformedNumberCarriesStructuredError) {
  const ArgParser args = parse({"--p=12x"});
  try {
    args.get_int("p", 0);
    FAIL() << "expected PpgException";
  } catch (const PpgException& e) {
    EXPECT_EQ(e.error().code, ErrorCode::kBadInput);
    EXPECT_NE(e.error().message.find("--p"), std::string::npos);
  }
}

TEST(ArgParser, RejectsBareDoubleDash) {
  std::vector<const char*> argv{"prog", "--"};
  EXPECT_THROW(ArgParser(2, argv.data()), PpgException);
}

TEST(ArgParser, UnusedKeysTracksQueries) {
  const ArgParser args = parse({"--used=1", "--typo=2"});
  EXPECT_EQ(args.get_int("used", 0), 1);
  const auto unused = args.unused_keys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(ParseKinds, SchedulerRoundtrip) {
  for (const SchedulerKind kind : all_scheduler_kinds()) {
    const auto parsed = parse_scheduler_kind(scheduler_kind_name(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(parse_scheduler_kind("NOPE").has_value());
}

TEST(ParseKinds, WorkloadRoundtrip) {
  for (const WorkloadKind kind : all_workload_kinds()) {
    const auto parsed = parse_workload_kind(workload_kind_name(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(parse_workload_kind("NOPE").has_value());
}

}  // namespace
}  // namespace ppg
