#include <gtest/gtest.h>

#include "green/green_algorithm.hpp"
#include "green/green_opt.hpp"
#include "test_helpers.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"

namespace ppg {
namespace {

TEST(GreenOpt, EmptyTraceIsFree) {
  const GreenOptResult r = green_opt(Trace{}, HeightLadder{2, 8}, 4);
  EXPECT_EQ(r.impact, 0u);
  EXPECT_TRUE(r.profile.empty());
}

TEST(GreenOpt, SingleRequestUsesMinHeight) {
  const GreenOptResult r =
      green_opt(test::make_trace({1}), HeightLadder{2, 8}, 4);
  // One miss at height 2: busy 4 ticks, impact 8 (final box clipped).
  EXPECT_EQ(r.impact, 8u);
  ASSERT_EQ(r.profile.size(), 1u);
  EXPECT_EQ(r.profile[0].height, 2u);
}

TEST(GreenOpt, ProfileConformsAndReplays) {
  Rng rng(1);
  const Trace t = gen::zipf(24, 800, 0.9, rng);
  const HeightLadder ladder{2, 32};
  const GreenOptResult r = green_opt(t, ladder, 6);
  EXPECT_TRUE(r.profile.conforms_to(ladder));
  // Replaying the reconstructed profile must finish the trace with exactly
  // the DP's impact.
  const ProfileRunResult replay = run_profile(t, r.profile, 6);
  EXPECT_EQ(replay.impact, r.impact);
}

TEST(GreenOpt, ValueOnlyVariantAgrees) {
  Rng rng(2);
  const Trace t = gen::uniform_random(16, 500, rng);
  const HeightLadder ladder{2, 16};
  EXPECT_EQ(green_opt(t, ladder, 4).impact,
            green_opt_impact(t, ladder, 4));
}

class GreenOptVsBruteForce : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(GreenOptVsBruteForce, DpMatchesExhaustiveSearch) {
  Rng rng(GetParam());
  const Trace t = gen::zipf(6, 12, 0.8, rng);
  const HeightLadder ladder{1, 4};
  const Impact dp = green_opt_impact(t, ladder, 3);
  // max_boxes = 12 suffices: every box serves at least one request.
  const Impact brute = green_opt_impact_bruteforce(t, ladder, 3,
                                                   /*max_boxes=*/12);
  EXPECT_EQ(dp, brute);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreenOptVsBruteForce,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// The defining property: no green pager can beat the DP.
class GreenOptIsLowerBound : public ::testing::TestWithParam<GreenKind> {};

TEST_P(GreenOptIsLowerBound, PagerImpactAtLeastOpt) {
  Rng rng(42);
  const HeightLadder ladder{2, 32};
  const std::vector<Trace> traces = {
      gen::cyclic(20, 600),
      gen::single_use(300),
      gen::zipf(40, 600, 1.0, rng),
      gen::sawtooth(3, 24, 100, 6, rng),
  };
  for (const Trace& t : traces) {
    const Impact opt = green_opt_impact(t, ladder, 5);
    auto pager = make_green_pager(GetParam(), ladder, Rng(7));
    const ProfileRunResult r = run_green_paging(t, *pager, 5);
    EXPECT_GE(r.impact, opt) << green_kind_name(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(AllPagers, GreenOptIsLowerBound,
                         ::testing::Values(GreenKind::kRand, GreenKind::kDet,
                                           GreenKind::kFixedMin,
                                           GreenKind::kFixedMax));

TEST(GreenOpt, PrefersSmallBoxesForSingleUseStream) {
  // Single-use stream: the minimal height is optimal.
  const Trace t = gen::single_use(64);
  const HeightLadder ladder{2, 16};
  const GreenOptResult r = green_opt(t, ladder, 4);
  for (const Box& b : r.profile) EXPECT_EQ(b.height, 2u);
}

TEST(GreenOpt, PrefersBigBoxForSmallHotCycle) {
  // Cycle over 4 pages with s large: a height-8 canonical box fills in
  // 4*s ticks and then hits for the remaining 4*s ticks (~16 impact per
  // request), while the minimal height 2 thrashes at 2*s = 100 impact per
  // request. OPT must spend most impact in boxes of height >= 8.
  const Trace t = gen::cyclic(4, 400);
  const HeightLadder ladder{2, 16};
  const GreenOptResult r = green_opt(t, ladder, 50);
  Impact tall_impact = 0;
  for (const Box& b : r.profile)
    if (b.height >= 8) tall_impact += b.impact();
  EXPECT_GT(tall_impact, r.impact / 2);
  // And it clearly beats the always-minimal strategy.
  auto min_pager = make_fixed_green(ladder, 2);
  const ProfileRunResult min_run = run_green_paging(t, *min_pager, 50);
  EXPECT_LT(r.impact, min_run.impact / 2);
}

TEST(GreenOpt, MonotoneInTracePrefix) {
  // Greedy greenness (paper Definition 1): OPT impact of a prefix is at
  // most the OPT impact of the full sequence.
  Rng rng(5);
  const Trace full = gen::zipf(20, 400, 0.9, rng);
  Trace prefix(std::vector<PageId>(full.requests().begin(),
                                   full.requests().begin() + 200));
  const HeightLadder ladder{2, 16};
  EXPECT_LE(green_opt_impact(prefix, ladder, 4),
            green_opt_impact(full, ladder, 4));
}

}  // namespace
}  // namespace ppg
