// PagingService contracts: the all-at-t0 cohort is byte-identical to a
// batch ParallelEngine::run() over the same sources; any fixed submission
// schedule is deterministic (same seed + schedule => identical metrics, at
// every engine_threads value); admission is FIFO with bounded-queue
// backpressure; depart() works in every tenant state; completion
// callbacks fire once, in engine order, with correct outcomes; histograms
// and the max-fault SLO aggregate exactly the per-tenant outcomes.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/parallel_engine.hpp"
#include "core/scheduler_factory.hpp"
#include "service/paging_service.hpp"
#include "trace/generators.hpp"
#include "trace/workload.hpp"
#include "util/thread_pool.hpp"

namespace ppg {
namespace {

ServiceConfig service_config() {
  ServiceConfig sc;
  sc.cache_size = 32;
  sc.miss_cost = 8;
  return sc;
}

TEST(PagingServiceTest, AllAtT0MatchesBatchRun) {
  WorkloadParams wp;
  wp.num_procs = 5;
  wp.cache_size = 32;
  wp.requests_per_proc = 300;
  wp.seed = 17;
  const MultiTraceSource sources =
      make_workload_source(WorkloadKind::kHeterogeneousMix, wp);

  EngineConfig ec;
  ec.cache_size = wp.cache_size;
  ec.miss_cost = 8;
  const auto batch_sched = make_scheduler(SchedulerKind::kDetPar, 7);
  const ParallelRunResult batch = run_parallel(sources, *batch_sched, ec);

  const auto sched = make_scheduler(SchedulerKind::kDetPar, 7);
  ServiceConfig sc = service_config();
  PagingService service(*sched, sc);
  for (ProcId i = 0; i < wp.num_procs; ++i)
    ASSERT_TRUE(service.submit(sources.source_ptr(i), 0).has_value());
  service.run_until_idle();
  ASSERT_TRUE(service.status().ok());

  // Per-tenant completion times and fault counts match the batch
  // completion vector and per-proc counters exactly.
  std::uint64_t hits = 0, misses = 0;
  for (TenantId t = 0; t < wp.num_procs; ++t) {
    const TenantOutcome out = service.outcome(t);
    EXPECT_EQ(out.completed, batch.completion[t]) << "tenant " << t;
    EXPECT_FALSE(out.departed);
    hits += out.hits;
    misses += out.misses;
  }
  EXPECT_EQ(hits, batch.hits);
  EXPECT_EQ(misses, batch.misses);
  const ServiceMetrics m = service.metrics();
  EXPECT_EQ(m.now, batch.makespan);
  EXPECT_EQ(m.completed, wp.num_procs);
  EXPECT_EQ(m.events_consumed, batch.num_boxes + wp.num_procs);
}

TEST(PagingServiceTest, SpecSubmissionRequiresSingleProcessor) {
  const auto sched = make_scheduler(SchedulerKind::kDetPar, 1);
  PagingService service(*sched, service_config());
  EXPECT_TRUE(service
                  .submit("workload(kind=hetero-mix,p=1,k=32,n=100,seed=1,s=8)",
                          0)
                  .has_value());
  EXPECT_THROW(
      service.submit("workload(kind=hetero-mix,p=4,k=32,n=100,seed=1,s=8)", 0),
      PpgException);
}

TEST(PagingServiceTest, BoundedQueueRejectsAndRecovers) {
  const auto sched = make_scheduler(SchedulerKind::kDetPar, 1);
  ServiceConfig sc = service_config();
  sc.admission_queue_limit = 2;
  PagingService service(*sched, sc);

  ASSERT_TRUE(service.submit(gen::cyclic_source(8, 50), 0).has_value());
  ASSERT_TRUE(service.submit(gen::cyclic_source(8, 50), 0).has_value());
  // Queue full: rejected, counted, no record created.
  EXPECT_FALSE(service.submit(gen::cyclic_source(8, 50), 0).has_value());
  EXPECT_EQ(service.metrics().rejected, 1u);
  EXPECT_EQ(service.metrics().submitted, 2u);

  // step() drains the queue; submission then succeeds again.
  ASSERT_TRUE(service.step());
  const auto id = service.submit(gen::cyclic_source(8, 50), 0);
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(*id, 2u);
  service.run_until_idle();
  EXPECT_EQ(service.metrics().completed, 3u);
}

TEST(PagingServiceTest, DepartInEveryState) {
  const auto sched = make_scheduler(SchedulerKind::kDetPar, 1);
  PagingService service(*sched, service_config());
  const auto keep = service.submit(gen::cyclic_source(8, 400), 0);
  const auto cancel_queued = service.submit(gen::cyclic_source(8, 400), 25);
  const auto cancel_active = service.submit(gen::cyclic_source(8, 400), 0);
  ASSERT_TRUE(keep && cancel_queued && cancel_active);

  // Queued cancel: never admitted, finalized as departed with no faults.
  service.depart(*cancel_queued);
  // Active cancel after a few steps: leaves at its next box boundary.
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(service.step());
  service.depart(*cancel_active);
  service.depart(*cancel_active);  // Idempotent.
  service.run_until_idle();
  ASSERT_TRUE(service.status().ok());

  EXPECT_FALSE(service.outcome(*keep).departed);
  const TenantOutcome queued_out = service.outcome(*cancel_queued);
  EXPECT_TRUE(queued_out.departed);
  EXPECT_EQ(queued_out.hits + queued_out.misses, 0u);
  const TenantOutcome active_out = service.outcome(*cancel_active);
  EXPECT_TRUE(active_out.departed);
  EXPECT_GT(active_out.hits + active_out.misses, 0u);

  // Departing a finished tenant is a no-op.
  service.depart(*keep);
  EXPECT_FALSE(service.outcome(*keep).departed);
  const ServiceMetrics m = service.metrics();
  EXPECT_EQ(m.completed, 1u);
  EXPECT_EQ(m.departed, 2u);
}

TEST(PagingServiceTest, CompletionCallbacksFireOncePerTenantInOrder) {
  const auto sched = make_scheduler(SchedulerKind::kDetPar, 1);
  PagingService service(*sched, service_config());
  std::vector<TenantOutcome> seen;
  service.on_completion(
      [&](const TenantOutcome& out) { seen.push_back(out); });

  std::vector<TenantId> ids;
  for (std::size_t i = 0; i < 4; ++i) {
    const auto id =
        service.submit(gen::cyclic_source(9, 100 + 30 * i), Time(i * 7));
    ASSERT_TRUE(id.has_value());
    ids.push_back(*id);
  }
  service.run_until_idle();
  ASSERT_TRUE(service.status().ok());

  ASSERT_EQ(seen.size(), 4u);
  std::vector<bool> fired(4, false);
  Time last = 0;
  for (const TenantOutcome& out : seen) {
    EXPECT_FALSE(fired[out.tenant]) << "duplicate callback";
    fired[out.tenant] = true;
    EXPECT_GE(out.completed, last) << "callbacks out of engine order";
    last = out.completed;
    EXPECT_EQ(out.completed, service.outcome(out.tenant).completed);
  }
}

TEST(PagingServiceTest, MetricsAggregateOutcomes) {
  const auto sched = make_scheduler(SchedulerKind::kDetPar, 1);
  PagingService service(*sched, service_config());
  for (int i = 0; i < 6; ++i)
    ASSERT_TRUE(
        service.submit(gen::cyclic_source(17, 150), Time(i * 11)).has_value());
  service.run_until_idle();
  ASSERT_TRUE(service.status().ok());

  const ServiceMetrics m = service.metrics();
  EXPECT_EQ(m.completed, 6u);
  EXPECT_EQ(m.completion_latency.total(), 6u);
  EXPECT_EQ(m.fault_counts.total(), 6u);
  std::uint64_t max_faults = 0;
  double latency_sum = 0;
  for (TenantId t = 0; t < 6; ++t) {
    const TenantOutcome out = service.outcome(t);
    max_faults = std::max(max_faults, out.misses);
    latency_sum += static_cast<double>(out.completed - out.arrival);
  }
  EXPECT_EQ(m.max_faults, max_faults);
  EXPECT_DOUBLE_EQ(m.mean_completion_latency, latency_sum / 6.0);
}

/// Fixed submission schedule; returns (makespan, hits^misses fingerprint).
ServiceMetrics run_schedule(SchedulerKind kind, std::size_t threads) {
  const auto sched = make_scheduler(kind, 31);
  ServiceConfig sc = service_config();
  sc.engine_threads = threads;
  PagingService service(*sched, sc);
  std::uint64_t submitted = 0;
  const auto submit_next = [&] {
    const TenantId id = static_cast<TenantId>(submitted);
    switch (submitted % 3) {
      case 0:
        service.submit(gen::cyclic_source(17, 200), Time(submitted * 5));
        break;
      case 1:
        service.submit(gen::zipf_source(64, 250, 0.9, Rng(id)),
                       Time(submitted * 5));
        break;
      default:
        service.submit(gen::single_use_source(100), Time(submitted * 5));
        break;
    }
    ++submitted;
  };
  for (int i = 0; i < 4; ++i) submit_next();
  int steps = 0;
  while (service.step()) {
    if (++steps % 3 == 0 && submitted < 12) submit_next();
    if (steps == 10) service.depart(2);
  }
  while (submitted < 12) submit_next();
  service.run_until_idle();
  EXPECT_TRUE(service.status().ok());
  return service.metrics();
}

TEST(PagingServiceTest, SchedulesAreDeterministicAtEveryThreadCount) {
  for (const SchedulerKind kind :
       {SchedulerKind::kDetPar, SchedulerKind::kRandPar}) {
    const ServiceMetrics want = run_schedule(kind, 0);
    EXPECT_EQ(want.completed + want.departed, 12u);
    for (const std::size_t threads :
         {std::size_t{0}, std::size_t{2}, ThreadPool::hardware_jobs()}) {
      const ServiceMetrics got = run_schedule(kind, threads);
      EXPECT_EQ(got.now, want.now) << "threads=" << threads;
      EXPECT_EQ(got.completed, want.completed) << "threads=" << threads;
      EXPECT_EQ(got.departed, want.departed) << "threads=" << threads;
      EXPECT_EQ(got.events_consumed, want.events_consumed)
          << "threads=" << threads;
      EXPECT_EQ(got.max_faults, want.max_faults) << "threads=" << threads;
      EXPECT_DOUBLE_EQ(got.mean_completion_latency,
                       want.mean_completion_latency)
          << "threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace ppg
