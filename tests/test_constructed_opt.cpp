#include <gtest/gtest.h>

#include "opt/constructed_opt.hpp"
#include "opt/opt_bounds.hpp"
#include "trace/adversarial.hpp"

namespace ppg {
namespace {

AdversarialParams tiny_params() {
  AdversarialParams p;
  p.ell = 3;
  p.a = 1;
  p.alpha = 0.05;
  p.suffix_phase_factor = 1.0;
  return p;
}

TEST(ConstructedOpt, StagesArePositive) {
  const AdversarialInstance inst = make_adversarial_instance(tiny_params());
  const ConstructedOptResult r = run_constructed_opt(inst, 8);
  EXPECT_GT(r.prefix_stage, 0u);
  EXPECT_GT(r.suffix_stage, 0u);
  EXPECT_EQ(r.makespan, r.prefix_stage + r.suffix_stage);
}

TEST(ConstructedOpt, SuffixStageIsMissBound) {
  const AdversarialInstance inst = make_adversarial_instance(tiny_params());
  const Time s = 8;
  const ConstructedOptResult r = run_constructed_opt(inst, s);
  const Time suffix_len = static_cast<Time>(inst.params.suffix_phases()) *
                          inst.params.phase_length();
  EXPECT_EQ(r.suffix_stage, s * suffix_len);
}

TEST(ConstructedOpt, AboveCertifiedLowerBound) {
  // The constructed schedule is achievable, so it must sit at or above the
  // certified lower bound for the same instance (T_LB <= T_OPT <= T_constructed).
  const AdversarialInstance inst = make_adversarial_instance(tiny_params());
  const Time s = 8;
  const ConstructedOptResult opt = run_constructed_opt(inst, s);
  OptBoundsConfig oc;
  oc.cache_size = inst.params.cache_size();
  oc.miss_cost = s;
  const OptBounds bounds = compute_opt_bounds(inst.traces, oc);
  EXPECT_GE(opt.makespan, bounds.lower_bound());
}

TEST(ConstructedOpt, PrefixStageBenefitsFromFullCache) {
  // With the full cache, prefix misses are only polluters + one cold fill
  // per sequence: the prefix busy time must be far below the all-miss
  // worst case.
  const AdversarialInstance inst = make_adversarial_instance(tiny_params());
  const Time s = 16;
  const ConstructedOptResult r = run_constructed_opt(inst, s);
  std::size_t prefix_requests = 0;
  for (const auto& info : inst.info) prefix_requests += info.prefix_requests;
  const Time all_miss = s * static_cast<Time>(prefix_requests);
  EXPECT_LT(r.prefix_stage, all_miss / 2);
}

}  // namespace
}  // namespace ppg
