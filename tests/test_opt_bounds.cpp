#include <gtest/gtest.h>

#include "core/parallel_engine.hpp"
#include "core/scheduler_factory.hpp"
#include "opt/opt_bounds.hpp"
#include "test_helpers.hpp"
#include "trace/generators.hpp"
#include "trace/workload.hpp"

namespace ppg {
namespace {

TEST(BusyMinSingle, MatchesBeladyTiming) {
  const Trace t = test::make_trace({1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5});
  // Belady at capacity 3 faults 7 times: time = 5 hits + 7 * s.
  EXPECT_EQ(busy_min_single(t, 3, 10), 5u + 7u * 10);
}

TEST(BusyMinSingle, EmptyTraceIsZero) {
  EXPECT_EQ(busy_min_single(Trace{}, 4, 10), 0u);
}

TEST(ImpactLbStack, SingleUseStreamCountsMisses) {
  // Every request is cold: impact >= s each.
  const Trace t = gen::single_use(100);
  EXPECT_EQ(impact_lb_stack(t, 7), 700u);
}

TEST(ImpactLbStack, TightCycleCountsWorkingSet) {
  // Cycle over m pages, m < s: warm requests have distance m-1, so each
  // contributes m; cold ones contribute s.
  const Trace t = gen::cyclic(4, 100);
  const Impact expect = 4 * 8 + (100 - 4) * 4;
  EXPECT_EQ(impact_lb_stack(t, 8), expect);
}

TEST(ImpactLbStack, CapsAtMissCost) {
  // Distances larger than s-1 are capped at s (missing is always an
  // option).
  const Trace t = gen::cyclic(100, 300);
  EXPECT_EQ(impact_lb_stack(t, 5), 300u * 5);
}

TEST(OptBounds, LowerBoundIsMaxOfTerms) {
  OptBounds b;
  b.lb_max_length = 10;
  b.lb_max_single = 30;
  b.lb_impact = 20;
  EXPECT_EQ(b.lower_bound(), 30u);
}

TEST(OptBounds, ComputedOnWorkload) {
  WorkloadParams params;
  params.num_procs = 4;
  params.cache_size = 16;
  params.requests_per_proc = 500;
  const MultiTrace mt =
      make_workload(WorkloadKind::kHomogeneousCyclic, params);
  OptBoundsConfig config;
  config.cache_size = 16;
  config.miss_cost = 4;
  const OptBounds b = compute_opt_bounds(mt, config);
  EXPECT_EQ(b.lb_max_length, 500u);
  EXPECT_GE(b.lb_max_single, 500u);
  EXPECT_GT(b.lb_impact, 0u);
}

TEST(OptBounds, ExactImpactAtLeastStackEstimate) {
  // The DP impact bound dominates the stack-distance estimate (both are
  // valid lower bounds; the DP is tight).
  MultiTrace mt;
  mt.add(gen::cyclic(12, 400));
  OptBoundsConfig fast;
  fast.cache_size = 16;
  fast.miss_cost = 6;
  OptBoundsConfig exact = fast;
  exact.exact_impact_max_requests = 100000;
  const OptBounds fb = compute_opt_bounds(mt, fast);
  const OptBounds eb = compute_opt_bounds(mt, exact);
  EXPECT_GE(eb.lb_impact, fb.lb_impact);
}

// The load-bearing property of the whole benchmark harness: the bound must
// never exceed what any real scheduler achieves.
class LowerBoundValidity : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(LowerBoundValidity, BoundBelowEveryScheduler) {
  WorkloadParams params;
  params.num_procs = 8;
  params.cache_size = 32;
  params.requests_per_proc = 1200;
  params.seed = 9;
  for (const WorkloadKind kind :
       {WorkloadKind::kHeterogeneousMix, WorkloadKind::kPollutedCycles,
        WorkloadKind::kSkewedLengths}) {
    const MultiTrace mt = make_workload(kind, params);
    OptBoundsConfig oc;
    oc.cache_size = 32;
    oc.miss_cost = 4;
    const OptBounds bounds = compute_opt_bounds(mt, oc);

    auto scheduler = make_scheduler(GetParam(), 3);
    EngineConfig ec;
    ec.cache_size = 32;
    ec.miss_cost = 4;
    const ParallelRunResult r = run_parallel(mt, *scheduler, ec);
    EXPECT_LE(bounds.lower_bound(), r.makespan)
        << scheduler_kind_name(GetParam()) << " on " << workload_kind_name(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, LowerBoundValidity,
                         ::testing::ValuesIn(all_scheduler_kinds()));

TEST(Stretch, DedicatedRunHasUnitStretch) {
  // One processor under STATIC owns the whole cache with no resets: its
  // completion equals its dedicated LRU time; with a working set that fits,
  // LRU == Belady, so stretch is exactly 1.
  MultiTrace mt;
  mt.add(gen::cyclic(6, 500));
  EngineConfig ec;
  ec.cache_size = 8;
  ec.miss_cost = 5;
  auto scheduler = make_scheduler(SchedulerKind::kStatic);
  const ParallelRunResult r = run_parallel(mt, *scheduler, ec);
  const auto stretch = per_proc_stretch(mt, r.completion, 8, 5);
  ASSERT_EQ(stretch.size(), 1u);
  EXPECT_DOUBLE_EQ(stretch[0], 1.0);
}

TEST(Stretch, AlwaysAtLeastOne) {
  WorkloadParams wp;
  wp.num_procs = 6;
  wp.cache_size = 32;
  wp.requests_per_proc = 800;
  const MultiTrace mt = make_workload(WorkloadKind::kSkewedLengths, wp);
  EngineConfig ec;
  ec.cache_size = 32;
  ec.miss_cost = 4;
  for (const SchedulerKind kind : all_scheduler_kinds()) {
    auto scheduler = make_scheduler(kind, 3);
    const ParallelRunResult r = run_parallel(mt, *scheduler, ec);
    for (double v : per_proc_stretch(mt, r.completion, 32, 4))
      EXPECT_GE(v, 1.0 - 1e-9) << scheduler_kind_name(kind);
  }
}

TEST(Stretch, EmptyTraceReportsOne) {
  MultiTrace mt;
  mt.add(Trace{});
  const auto stretch = per_proc_stretch(mt, {0}, 8, 4);
  EXPECT_DOUBLE_EQ(stretch[0], 1.0);
}

}  // namespace
}  // namespace ppg
