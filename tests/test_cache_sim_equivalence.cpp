// Equivalence check for the residency refactor: CacheSim now routes
// residency through the EvictionPolicy (touch_if_resident / contains)
// instead of mirroring it in its own hash set. This test reimplements the
// old mirrored-set simulator as a reference and checks that every policy
// produces identical hit/miss/time totals on random traces.
#include <gtest/gtest.h>

#include <unordered_set>

#include "paging/cache_sim.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"

namespace ppg {
namespace {

// The pre-refactor CacheSim loop, verbatim: residency mirrored in an
// unordered_set, two policy lookups per access.
CacheSimResult reference_simulate(PolicyKind kind, const Trace& trace,
                                  Height capacity, Time miss_cost,
                                  std::uint64_t seed) {
  auto policy = make_policy(kind, capacity, seed);
  std::unordered_set<PageId> resident;
  CacheSimResult result;
  policy->prepare(trace);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    policy->advance(i);
    const PageId page = trace[i];
    if (resident.contains(page)) {
      policy->touch(page);
      ++result.hits;
      result.time += 1;
      continue;
    }
    if (resident.size() == capacity) {
      const PageId victim = policy->evict();
      resident.erase(victim);
    }
    policy->insert(page);
    resident.insert(page);
    ++result.misses;
    result.time += miss_cost;
  }
  return result;
}

class CacheSimEquivalence : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(CacheSimEquivalence, MatchesMirroredResidencyReference) {
  const PolicyKind kind = GetParam();
  Rng rng(2024);
  const std::vector<Trace> traces{
      gen::zipf(96, 4000, 1.0, rng),
      gen::cyclic(24, 3000),
      gen::sawtooth(4, 40, 400, 8, rng),
      gen::single_use(2000),
  };
  for (const Height capacity : {Height{1}, Height{3}, Height{16}, Height{64}}) {
    for (std::size_t t = 0; t < traces.size(); ++t) {
      const CacheSimResult expected =
          reference_simulate(kind, traces[t], capacity, 7, /*seed=*/5);
      const CacheSimResult actual =
          simulate_policy(kind, traces[t], capacity, 7, /*seed=*/5);
      ASSERT_EQ(actual.hits, expected.hits)
          << policy_kind_name(kind) << " capacity=" << capacity
          << " trace=" << t;
      ASSERT_EQ(actual.misses, expected.misses)
          << policy_kind_name(kind) << " capacity=" << capacity
          << " trace=" << t;
      ASSERT_EQ(actual.time, expected.time);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, CacheSimEquivalence,
                         ::testing::ValuesIn(all_policy_kinds()),
                         [](const auto& param_info) {
                           return std::string(
                               policy_kind_name(param_info.param));
                         });

}  // namespace
}  // namespace ppg
