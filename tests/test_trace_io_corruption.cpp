// Hostile-input hardening of the trace readers: truncation at any byte,
// garbage headers, and attacker-controlled counts/lengths must surface a
// structured PpgException — never a crash and never an allocation keyed on
// the corrupt value.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "test_helpers.hpp"
#include "trace/trace_io.hpp"
#include "util/error.hpp"

namespace ppg {
namespace {

MultiTrace sample() {
  MultiTrace mt;
  mt.add(test::make_trace({1, 2, 3, 1, 2}));
  mt.add(test::make_trace({9, 8, 9}));
  return mt;
}

std::string serialized() {
  std::ostringstream os;
  write_multitrace(os, sample());
  return os.str();
}

TEST(TraceIoCorruption, RoundTripStillWorks) {
  std::istringstream is(serialized());
  const MultiTrace back = read_multitrace(is);
  EXPECT_TRUE(back.traces() == sample().traces());
}

TEST(TraceIoCorruption, TruncationAtEveryByteIsRejected) {
  const std::string bytes = serialized();
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::istringstream is(bytes.substr(0, cut));
    try {
      read_multitrace(is);
      FAIL() << "accepted a stream truncated to " << cut << " of "
             << bytes.size() << " bytes";
    } catch (const PpgException& e) {
      EXPECT_EQ(e.error().code, ErrorCode::kCorruptTrace);
    }
  }
}

TEST(TraceIoCorruption, BadMagicAndVersionAreRejected) {
  std::string bytes = serialized();
  {
    std::string bad = bytes;
    bad[3] = 'x';
    std::istringstream is(bad);
    try {
      read_multitrace(is);
      FAIL() << "accepted bad magic";
    } catch (const PpgException& e) {
      EXPECT_NE(e.error().message.find("magic"), std::string::npos);
    }
  }
  {
    std::string bad = bytes;
    bad[8] = '\x7f';  // version little-endian low byte
    std::istringstream is(bad);
    try {
      read_multitrace(is);
      FAIL() << "accepted bad version";
    } catch (const PpgException& e) {
      EXPECT_NE(e.error().message.find("version"), std::string::npos);
    }
  }
}

TEST(TraceIoCorruption, HugeDeclaredCountIsRejectedBeforeLooping) {
  std::string bytes = serialized();
  // Trace count is the u32 after magic(8) + version(4).
  const std::uint32_t huge = 0xffffffffu;
  std::memcpy(bytes.data() + 12, &huge, sizeof(huge));
  std::istringstream is(bytes);
  try {
    read_multitrace(is);
    FAIL() << "accepted a 4-billion-trace header";
  } catch (const PpgException& e) {
    EXPECT_EQ(e.error().code, ErrorCode::kCorruptTrace);
    EXPECT_NE(e.error().message.find("count"), std::string::npos);
    EXPECT_NE(e.error().byte_offset, kNoOffset);
  }
}

TEST(TraceIoCorruption, HugeDeclaredLengthIsRejectedBeforeAllocating) {
  std::string bytes = serialized();
  // First trace's u64 length sits right after the 16-byte header. A
  // declared 2^61 requests would be a 2^64-byte allocation if trusted.
  const std::uint64_t huge = std::uint64_t{1} << 61;
  std::memcpy(bytes.data() + 16, &huge, sizeof(huge));
  std::istringstream is(bytes);
  try {
    read_multitrace(is);
    FAIL() << "accepted a 2^61-request trace length";
  } catch (const PpgException& e) {
    EXPECT_EQ(e.error().code, ErrorCode::kCorruptTrace);
    EXPECT_NE(e.error().message.find("length"), std::string::npos);
  }
}

TEST(TraceIoCorruption, TextReaderRejectsMalformedLines) {
  {
    std::istringstream is("0 1\nnot-a-number 2\n");
    EXPECT_THROW(read_multitrace_text(is), PpgException);
  }
  {
    std::istringstream is("0 1 extra-token\n");
    try {
      read_multitrace_text(is);
      FAIL() << "accepted trailing tokens";
    } catch (const PpgException& e) {
      EXPECT_NE(e.error().message.find("trailing"), std::string::npos);
    }
  }
}

TEST(TraceIoCorruption, TextReaderCapsHostileProcIds) {
  // A proc id of 2^40 would be a terabyte-scale resize if trusted.
  std::istringstream is("1099511627776 5\n");
  try {
    read_multitrace_text(is);
    FAIL() << "accepted a 2^40 processor id";
  } catch (const PpgException& e) {
    EXPECT_EQ(e.error().code, ErrorCode::kCorruptTrace);
    EXPECT_NE(e.error().message.find("out of range"), std::string::npos);
  }
}

TEST(TraceIoCorruption, TextReaderSkipsCommentsAndBlanks) {
  std::istringstream is("# header comment\n\n  \t\n0 3\n0 4 # inline\n1 7\n");
  const MultiTrace mt = read_multitrace_text(is);
  ASSERT_EQ(mt.num_procs(), 2u);
  EXPECT_EQ(mt.trace(0).requests(), (std::vector<PageId>{3, 4}));
  EXPECT_EQ(mt.trace(1).requests(), (std::vector<PageId>{7}));
}

// --- Chunked streaming reader (open_multitrace_source) ---------------------

class StreamingReaderCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "ppg_corrupt_stream.ppgtrace";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void write_bytes(const std::string& bytes) {
    std::ofstream os(path_, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::string path_;
};

TEST_F(StreamingReaderCorruption, StreamsIntactFileThroughTinyChunks) {
  write_bytes(serialized());
  // chunk_requests=2 forces a refill every other request; the reader must
  // hide the chunking entirely, including EOF landing inside a chunk.
  const MultiTraceSource sources = open_multitrace_source(path_, 2);
  EXPECT_TRUE(sources.materialize().traces() == sample().traces());
}

TEST_F(StreamingReaderCorruption, EofExactlyAtChunkBoundary) {
  // First trace has 5 requests; a 5-request chunk makes the payload end
  // exactly where the buffer does, and the second trace (3 requests) ends
  // mid-chunk. Both boundaries must read cleanly.
  write_bytes(serialized());
  const MultiTraceSource sources = open_multitrace_source(path_, 5);
  EXPECT_TRUE(sources.materialize().traces() == sample().traces());
  // Also chunk == total payload and chunk > payload.
  for (const std::size_t chunk : {std::size_t{8}, std::size_t{64}}) {
    const MultiTraceSource again = open_multitrace_source(path_, chunk);
    EXPECT_TRUE(again.materialize().traces() == sample().traces());
  }
}

TEST_F(StreamingReaderCorruption, TruncationAtEveryByteIsRejectedAtOpen) {
  // A torn record — the file ends before the lengths declared in its
  // header — must fail at open_multitrace_source time, before any cursor
  // touches the payload.
  const std::string bytes = serialized();
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    write_bytes(bytes.substr(0, cut));
    try {
      open_multitrace_source(path_, 4);
      FAIL() << "opened a file truncated to " << cut << " of "
             << bytes.size() << " bytes";
    } catch (const PpgException& e) {
      EXPECT_TRUE(e.error().code == ErrorCode::kCorruptTrace ||
                  e.error().code == ErrorCode::kIoError)
          << "cut=" << cut << ": " << e.error().to_string();
    }
  }
}

TEST_F(StreamingReaderCorruption, MissingFileIsAnIoError) {
  try {
    open_multitrace_source(path_ + ".does-not-exist");
    FAIL() << "opened a nonexistent file";
  } catch (const PpgException& e) {
    EXPECT_EQ(e.error().code, ErrorCode::kIoError);
  }
}

TEST_F(StreamingReaderCorruption, HugeDeclaredLengthIsRejectedAtOpen) {
  std::string bytes = serialized();
  const std::uint64_t huge = std::uint64_t{1} << 61;
  std::memcpy(bytes.data() + 16, &huge, sizeof(huge));
  write_bytes(bytes);
  try {
    open_multitrace_source(path_, 4);
    FAIL() << "accepted a 2^61-request trace length";
  } catch (const PpgException& e) {
    EXPECT_EQ(e.error().code, ErrorCode::kCorruptTrace);
  }
}

TEST_F(StreamingReaderCorruption, CheckpointRewindAcrossTruncation) {
  // A cursor checkpointed before the file is torn must still surface a
  // structured error after rewinding into the now-missing region — the
  // checkpoint is cursor state, not a cached copy of the payload.
  const std::string bytes = serialized();
  write_bytes(bytes);
  const MultiTraceSource sources = open_multitrace_source(path_, 2);
  auto cursor = sources.source(0).cursor();
  (void)cursor->peek();
  cursor->advance();
  const CursorCheckpoint cp = cursor->checkpoint();
  // Tear the file just past the first request's payload, then rewind and
  // stream: the refill that crosses the cut must throw, not fabricate
  // requests or crash.
  write_bytes(bytes.substr(0, 16 + 8 + 1 * 8));
  cursor->rewind(cp);
  try {
    while (!cursor->done()) {
      (void)cursor->peek();
      cursor->advance();
    }
    FAIL() << "rewound cursor streamed past the torn payload";
  } catch (const PpgException& e) {
    EXPECT_TRUE(e.error().code == ErrorCode::kCorruptTrace ||
                e.error().code == ErrorCode::kIoError)
        << e.error().to_string();
  }
}

TEST_F(StreamingReaderCorruption, RewindAfterMidStreamCorruptionStaysSane) {
  // Bit-flip the payload under a live cursor: whatever the cursor already
  // buffered may replay, but rewinding and re-reading must never escape
  // the [0, declared-length) request count or crash. (File-backed payload
  // words are raw PageIds, so a flipped byte is data corruption the
  // format cannot detect — the invariant here is bounded, crash-free
  // behaviour, with length/structure errors still structured.)
  const std::string bytes = serialized();
  write_bytes(bytes);
  const MultiTraceSource sources = open_multitrace_source(path_, 2);
  auto cursor = sources.source(0).cursor();
  const CursorCheckpoint cp = cursor->checkpoint();
  std::string corrupt = bytes;
  corrupt[16 + 8 + 3] ^= '\x40';  // inside the first trace's payload
  write_bytes(corrupt);
  cursor->rewind(cp);
  std::size_t streamed = 0;
  try {
    while (!cursor->done() && streamed < 16) {
      (void)cursor->peek();
      cursor->advance();
      ++streamed;
    }
    EXPECT_LE(streamed, sample().trace(0).size());
  } catch (const PpgException& e) {
    EXPECT_TRUE(e.error().code == ErrorCode::kCorruptTrace ||
                e.error().code == ErrorCode::kIoError)
        << e.error().to_string();
  }
}

TEST_F(StreamingReaderCorruption, TruncationAfterOpenSurfacesFromCursor) {
  // The validated file shrinks between open and read (torn rewrite,
  // vanished NFS page): the cursor must surface kCorruptTrace, not crash
  // or return garbage.
  const std::string bytes = serialized();
  write_bytes(bytes);
  const MultiTraceSource sources = open_multitrace_source(path_, 2);
  // Cut the file inside the first trace's payload (header is 16 bytes,
  // then u64 length, then 5 * 8 payload bytes).
  write_bytes(bytes.substr(0, 16 + 8 + 2 * 8));
  auto cursor = sources.source(0).cursor();
  try {
    while (!cursor->done()) {
      (void)cursor->peek();
      cursor->advance();
    }
    FAIL() << "streamed past the torn payload";
  } catch (const PpgException& e) {
    EXPECT_TRUE(e.error().code == ErrorCode::kCorruptTrace ||
                e.error().code == ErrorCode::kIoError)
        << e.error().to_string();
  }
}

}  // namespace
}  // namespace ppg
