// Engine configuration edge cases: the safety net and the optional
// instrumentation paths.
#include <gtest/gtest.h>

#include "core/parallel_engine.hpp"
#include "core/simple_schedulers.hpp"
#include "trace/generators.hpp"
#include "trace/workload.hpp"

namespace ppg {
namespace {

TEST(EngineConfig, MaxTimeAbortsRunawayRuns) {
  MultiTrace mt;
  mt.add(gen::single_use(1000));
  auto scheduler = make_static_partition();
  EngineConfig c;
  c.cache_size = 4;
  c.miss_cost = 8;
  c.max_time = 100;  // far less than the 8000 ticks the run needs
  EXPECT_DEATH(run_parallel(mt, *scheduler, c), "max_time");
}

TEST(EngineConfig, TimelineTrackingCanBeDisabled) {
  WorkloadParams wp;
  wp.num_procs = 4;
  wp.cache_size = 16;
  wp.requests_per_proc = 300;
  const MultiTrace mt = make_workload(WorkloadKind::kZipf, wp);
  auto s1 = make_equi_partition();
  auto s2 = make_equi_partition();
  EngineConfig with;
  with.cache_size = 16;
  with.miss_cost = 3;
  EngineConfig without = with;
  without.track_memory_timeline = false;
  const ParallelRunResult a = run_parallel(mt, *s1, with);
  const ParallelRunResult b = run_parallel(mt, *s2, without);
  // Behaviour identical; only instrumentation differs.
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.completion, b.completion);
  EXPECT_GT(a.peak_concurrent_height, 0u);
  EXPECT_EQ(b.peak_concurrent_height, 0u);
}

TEST(EngineConfig, RejectsZeroCacheOrMissCost) {
  MultiTrace mt;
  mt.add(gen::single_use(4));
  auto scheduler = make_static_partition();
  EngineConfig bad_cache;
  bad_cache.cache_size = 0;
  bad_cache.miss_cost = 2;
  EXPECT_DEATH(ParallelEngine(mt, *scheduler, bad_cache), "");
  EngineConfig bad_cost;
  bad_cost.cache_size = 4;
  bad_cost.miss_cost = 0;
  EXPECT_DEATH(ParallelEngine(mt, *scheduler, bad_cost), "");
}

TEST(WorkloadCacheHungry, HasHungryAndModestProcessors) {
  WorkloadParams wp;
  wp.num_procs = 16;
  wp.cache_size = 128;
  wp.requests_per_proc = 400;
  const MultiTrace mt = make_workload(WorkloadKind::kCacheHungry, wp);
  // Processor 0 cycles k/4 pages, the tail cycles k/(2p).
  EXPECT_EQ(mt.trace(0).distinct_pages(), 32u);
  EXPECT_EQ(mt.trace(15).distinct_pages(), 4u);
  // Hungry sets sum to < k/2 so OPT can hit-serve everyone at once.
  std::size_t hungry_sum = 0;
  for (ProcId i = 0; i < mt.num_procs(); ++i) {
    const std::size_t w = mt.trace(i).distinct_pages();
    if (w > 4) hungry_sum += w;
  }
  EXPECT_LT(hungry_sum, 64u);
}

}  // namespace
}  // namespace ppg
