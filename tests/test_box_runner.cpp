#include <gtest/gtest.h>

#include "green/box_runner.hpp"
#include "test_helpers.hpp"
#include "trace/generators.hpp"

namespace ppg {
namespace {

TEST(BoxRunner, ServesWithinBudget) {
  // s = 4. Box of height 2, duration 8: two cold misses consume the
  // entire budget.
  const Trace t = test::make_trace({1, 2, 3, 4});
  BoxRunner runner(t, 4);
  const BoxStepResult step = runner.run_box(2, 8);
  EXPECT_EQ(step.requests_completed, 2u);
  EXPECT_EQ(step.misses, 2u);
  EXPECT_EQ(step.busy_time, 8u);
  EXPECT_EQ(step.stall_time, 0u);
  EXPECT_FALSE(step.finished);
  EXPECT_EQ(runner.position(), 2u);
}

TEST(BoxRunner, StallsWhenRequestDoesNotFit) {
  // s = 4, duration 6: one miss (4 ticks) then the next miss doesn't fit;
  // 2 ticks stall.
  const Trace t = test::make_trace({1, 2});
  BoxRunner runner(t, 4);
  const BoxStepResult step = runner.run_box(2, 6);
  EXPECT_EQ(step.requests_completed, 1u);
  EXPECT_EQ(step.stall_time, 2u);
}

TEST(BoxRunner, HitsCostOne) {
  // Height 1, page repeats: 1 miss (s=4) + 4 hits in a duration-8 box.
  const Trace t = test::make_trace({1, 1, 1, 1, 1});
  BoxRunner runner(t, 4);
  const BoxStepResult step = runner.run_box(1, 8);
  EXPECT_EQ(step.misses, 1u);
  EXPECT_EQ(step.hits, 4u);
  EXPECT_TRUE(step.finished);
}

TEST(BoxRunner, CompartmentalizationResetsCache) {
  // Page 1 is resident after box 1; a fresh box must miss on it again.
  const Trace t = test::make_trace({1, 1});
  BoxRunner runner(t, 4);
  const BoxStepResult first = runner.run_box(2, 4);
  EXPECT_EQ(first.requests_completed, 1u);
  const BoxStepResult second = runner.run_box(2, 4, /*fresh=*/true);
  EXPECT_EQ(second.misses, 1u);  // NOT a hit: compartment starts empty
  EXPECT_EQ(second.hits, 0u);
}

TEST(BoxRunner, ContinuationKeepsCache) {
  const Trace t = test::make_trace({1, 1});
  BoxRunner runner(t, 4);
  runner.run_box(2, 4);
  const BoxStepResult second = runner.run_box(2, 4, /*fresh=*/false);
  EXPECT_EQ(second.hits, 1u);  // survived the box boundary
  EXPECT_EQ(second.misses, 0u);
}

TEST(BoxRunner, HeightChangeAlwaysResets) {
  const Trace t = test::make_trace({1, 1});
  BoxRunner runner(t, 4);
  runner.run_box(2, 4);
  // fresh=false but height changed: still a reset.
  const BoxStepResult second = runner.run_box(4, 16, /*fresh=*/false);
  EXPECT_EQ(second.misses, 1u);
}

TEST(BoxRunner, LruEvictionWithinBox) {
  // Height 2, cycle of 3 pages: every access misses.
  const Trace t = gen::cyclic(3, 6);
  BoxRunner runner(t, 2);
  const BoxStepResult step = runner.run_box(2, 100);
  EXPECT_EQ(step.misses, 6u);
  EXPECT_EQ(step.hits, 0u);
}

TEST(BoxRunner, CanonicalBoxCompletesAtLeastHeightRequests) {
  // The paper's accounting relies on a height-z canonical box finishing
  // >= z requests: duration s*z covers z misses.
  const Trace t = gen::single_use(100);
  for (Height z : {1u, 2u, 4u, 8u}) {
    BoxRunner runner(t, 7);
    const BoxStepResult step = runner.run_box(z, 7 * z);
    EXPECT_GE(step.requests_completed, z) << "height " << z;
  }
}

TEST(BoxRunner, ResetRestartsFromBeginning) {
  const Trace t = test::make_trace({1, 2, 3});
  BoxRunner runner(t, 2);
  runner.run_box(4, 100);
  EXPECT_TRUE(runner.finished());
  runner.reset();
  EXPECT_FALSE(runner.finished());
  EXPECT_EQ(runner.position(), 0u);
}

TEST(RunProfile, AccountsImpactExactly) {
  const Trace t = gen::cyclic(2, 10);
  // s = 3. Box 1 (height 4, duration 12): misses pages 0,1 (6 ticks) then 6
  // hits -> 8 requests, fully consumed. Box 2: fresh compartment re-misses
  // both pages (6 busy ticks) and finishes; its tail is clipped.
  const BoxProfile profile({canonical_box(4, 3), canonical_box(4, 3)});
  const ProfileRunResult r = run_profile(t, profile, 3);
  EXPECT_EQ(r.boxes_used, 2u);
  EXPECT_EQ(r.misses, 4u);
  EXPECT_EQ(r.hits, 6u);
  EXPECT_EQ(r.time, 12u + 6u);
  EXPECT_EQ(r.impact, 4u * 12u + 4u * 6u);
}

TEST(RunProfile, ChecksCompletion) {
  const Trace t = gen::single_use(100);
  const BoxProfile profile({canonical_box(1, 2)});  // serves ~1 request
  EXPECT_DEATH(run_profile(t, profile, 2), "profile too short");
}

TEST(RunProfile, FinalBoxClipped) {
  const Trace t = test::make_trace({1});
  const BoxProfile profile({canonical_box(4, 5)});  // duration 20
  const ProfileRunResult r = run_profile(t, profile, 5);
  EXPECT_EQ(r.time, 5u);          // one miss: 5 ticks, tail not charged
  EXPECT_EQ(r.impact, 4u * 5u);   // height * busy
}

}  // namespace
}  // namespace ppg
