// The fault-injection matrix: every injected contract-violation class,
// driven through the real engine against each paper scheduler, is caught
// by ValidatingScheduler with the expected structured ViolationKind — no
// aborts anywhere.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/contract.hpp"
#include "core/fault_injection.hpp"
#include "core/parallel_engine.hpp"
#include "core/scheduler_factory.hpp"
#include "trace/workload.hpp"

namespace ppg {
namespace {

constexpr Height kCacheSize = 16;
constexpr Time kMissCost = 4;

MultiTrace matrix_workload() {
  WorkloadParams wp;
  wp.num_procs = 8;
  wp.cache_size = kCacheSize;
  wp.requests_per_proc = 1500;
  wp.seed = 5;
  wp.miss_cost = kMissCost;
  return make_workload(WorkloadKind::kHeterogeneousMix, wp);
}

EngineConfig engine_config() {
  EngineConfig ec;
  ec.cache_size = kCacheSize;
  ec.miss_cost = kMissCost;
  return ec;
}

/// Through the engine `now` always equals the processor's previous box
/// end, so a backdated start also overlaps the previous box and the
/// validator (correctly) classifies it as the overlap.
ViolationKind engine_expected(FaultClass fault) {
  if (fault == FaultClass::kBackdatedStart)
    return ViolationKind::kOverlappingBox;
  return expected_violation(fault);
}

/// Peak concurrent height of a clean (uninjected) run, used to calibrate
/// a budget that the clean scheduler honours but the injected one busts.
std::uint64_t clean_peak(const std::string& inner_spec, const MultiTrace& mt) {
  ValidatorConfig vc;
  vc.max_augmentation = 0.0;  // observe only
  vc.throw_on_violation = false;
  auto validator = make_validating(make_scheduler_from_spec(inner_spec, 11), vc);
  const CheckedRun run = run_parallel_checked(mt, *validator, engine_config());
  EXPECT_TRUE(run.status.ok()) << inner_spec << " clean run failed: "
                               << run.status.error.to_string();
  return validator->peak_concurrent_observed();
}

TEST(FaultInjection, MatrixEveryClassCaughtOnEveryScheduler) {
  const MultiTrace mt = matrix_workload();
  const std::vector<std::string> inners = {"RAND-PAR", "DET-PAR",
                                           "GLOBAL-LRU(box)"};
  for (const std::string& inner_spec : inners) {
    const std::uint64_t peak = clean_peak(inner_spec, mt);
    // The injected budget-overflow boxes drive the concurrent height
    // towards p * pow2_floor(k); the calibrated budget must sit strictly
    // below that or the budget cell cannot distinguish the runs.
    ASSERT_LT(peak + kCacheSize, std::uint64_t{8} * kCacheSize)
        << inner_spec << " clean peak " << peak
        << " leaves no headroom for the budget-overflow cell";

    for (const FaultClass fault : all_fault_classes()) {
      SCOPED_TRACE(std::string(fault_class_name(fault)) + " into " +
                   inner_spec);

      ValidatorConfig vc;
      vc.max_augmentation = 0.0;
      switch (fault) {
        case FaultClass::kNonPow2Height:
          vc.require_pow2_heights = true;
          break;
        case FaultClass::kExcessiveStall:
          vc.max_stall = 100000;  // clean stalls are orders below this
          break;
        case FaultClass::kBudgetOverflow:
          vc.max_augmentation = static_cast<double>(peak + kCacheSize) /
                                static_cast<double>(kCacheSize);
          break;
        default:
          break;
      }

      FaultInjectionConfig fic;
      fic.fault = fault;
      fic.seed = 13;
      auto injector =
          make_fault_injecting(make_scheduler_from_spec(inner_spec, 11), fic);
      FaultInjectingScheduler* inj = injector.get();
      auto validator = make_validating(std::move(injector), vc);
      ValidatingScheduler* val = validator.get();

      const CheckedRun run =
          run_parallel_checked(mt, *validator, engine_config());

      EXPECT_FALSE(run.status.ok()) << "injected fault went undetected";
      EXPECT_EQ(run.status.error.code, ErrorCode::kContractViolation);
      ASSERT_GE(val->violations().size(), 1u);
      EXPECT_EQ(val->violations()[0].kind, engine_expected(fault))
          << "caught as " << val->violations()[0].describe();
      EXPECT_GE(inj->faults_injected(), 1u);
      if (fault != FaultClass::kBudgetOverflow) {
        // One-shot classes must be caught on the very box that was
        // corrupted — zero tolerance, not eventual detection.
        EXPECT_EQ(inj->faults_injected(), 1u);
      }
    }
  }
}

TEST(FaultInjection, InjectionPointIsDeterministicPerSeed) {
  const MultiTrace mt = matrix_workload();
  auto run_once = [&mt](std::uint64_t seed) {
    FaultInjectionConfig fic;
    fic.fault = FaultClass::kZeroHeight;
    fic.seed = seed;
    auto injector =
        make_fault_injecting(make_scheduler_from_spec("DET-PAR", 11), fic);
    FaultInjectingScheduler* inj = injector.get();
    auto validator = make_validating(std::move(injector), ValidatorConfig{});
    const CheckedRun run =
        run_parallel_checked(mt, *validator, engine_config());
    EXPECT_FALSE(run.status.ok());
    return inj->boxes_issued();
  };
  EXPECT_EQ(run_once(21), run_once(21));
}

TEST(FaultInjection, SpecGrammarBuildsDecoratedChain) {
  auto chain =
      make_scheduler_from_spec("VALIDATE(INJECT(zero-height,RAND-PAR))", 3);
  EXPECT_STREQ(chain->name(), "VALIDATE(INJECT(zero-height,RAND-PAR))");
  EXPECT_THROW(make_scheduler_from_spec("INJECT(bogus-fault,RAND-PAR)"),
               PpgException);
  EXPECT_THROW(make_scheduler_from_spec("NOPE"), PpgException);
}

TEST(FaultInjection, EveryFaultClassRoundTripsThroughItsName) {
  for (const FaultClass fault : all_fault_classes()) {
    const auto parsed = parse_fault_class(fault_class_name(fault));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, fault);
    EXPECT_STRNE(violation_kind_name(expected_violation(fault)), "unknown");
  }
}

}  // namespace
}  // namespace ppg
