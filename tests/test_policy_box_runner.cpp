#include <gtest/gtest.h>

#include "green/box_runner.hpp"
#include "green/policy_box_runner.hpp"
#include "test_helpers.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"

namespace ppg {
namespace {

TEST(PolicyBoxRunner, LruVariantMatchesSpecializedRunner) {
  // The generic runner with kLru must reproduce BoxRunner exactly, box by
  // box, across resets and height changes.
  Rng rng(1);
  const Trace t = gen::zipf(32, 3000, 0.9, rng);
  BoxRunner fast(t, 5);
  PolicyBoxRunner generic(t, 5, PolicyKind::kLru);
  Rng boxes(2);
  while (!fast.finished()) {
    const auto height = static_cast<Height>(1u << boxes.next_below(5));
    const Time duration = 5 * static_cast<Time>(height);
    const bool fresh = boxes.next_bool(0.7);
    const BoxStepResult a = fast.run_box(height, duration, fresh);
    const BoxStepResult b = generic.run_box(height, duration, fresh);
    ASSERT_EQ(a.requests_completed, b.requests_completed);
    ASSERT_EQ(a.hits, b.hits);
    ASSERT_EQ(a.misses, b.misses);
    ASSERT_EQ(a.stall_time, b.stall_time);
    ASSERT_EQ(fast.position(), generic.position());
  }
  EXPECT_TRUE(generic.finished());
}

TEST(PolicyBoxRunner, CompartmentalizationResets) {
  const Trace t = test::make_trace({1, 1});
  PolicyBoxRunner runner(t, 4, PolicyKind::kFifo);
  runner.run_box(2, 4);
  const BoxStepResult second = runner.run_box(2, 4, /*fresh=*/true);
  EXPECT_EQ(second.misses, 1u);  // fresh compartment misses again
}

class InBoxPolicyConservation : public ::testing::TestWithParam<PolicyKind> {
};

TEST_P(InBoxPolicyConservation, CompletesAndConserves) {
  Rng rng(3);
  const Trace t = gen::sawtooth(3, 20, 400, 6, rng);
  const HeightLadder ladder{2, 16};
  auto pager = make_det_green(ladder);
  const ProfileRunResult r =
      run_green_paging_with_policy(t, *pager, 6, GetParam(), 17);
  EXPECT_EQ(r.hits + r.misses, t.size());
  EXPECT_GT(r.impact, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, InBoxPolicyConservation,
                         ::testing::ValuesIn(all_policy_kinds()));

TEST(PolicyBoxRunner, InBoxBeladyNeverLosesToInBoxLru) {
  // Clairvoyant eviction inside the same box stream can only reduce
  // misses.
  Rng rng(5);
  const HeightLadder ladder{2, 16};
  const std::vector<Trace> traces{
      gen::cyclic(12, 4000),
      gen::zipf(40, 4000, 1.0, rng),
      gen::single_use(2000),
  };
  for (const Trace& t : traces) {
    auto pager_a = make_det_green(ladder);
    auto pager_b = make_det_green(ladder);
    const ProfileRunResult lru =
        run_green_paging_with_policy(t, *pager_a, 8, PolicyKind::kLru);
    const ProfileRunResult belady =
        run_green_paging_with_policy(t, *pager_b, 8, PolicyKind::kBelady);
    EXPECT_LE(belady.misses, lru.misses);
  }
}

TEST(PolicyBoxRunner, PolicySpreadIsBoundedInsideBoxes) {
  // The "LRU WLOG" sanity at unit-test scale: on a hot cycle, every online
  // in-box policy lands within a constant factor of in-box LRU's time.
  const Trace t = gen::cyclic(12, 6000);
  const HeightLadder ladder{4, 32};
  auto base_pager = make_det_green(ladder);
  const ProfileRunResult lru =
      run_green_paging_with_policy(t, *base_pager, 8, PolicyKind::kLru);
  for (const PolicyKind kind : all_policy_kinds()) {
    auto pager = make_det_green(ladder);
    const ProfileRunResult r =
        run_green_paging_with_policy(t, *pager, 8, kind, 7);
    EXPECT_LT(static_cast<double>(r.time),
              4.0 * static_cast<double>(lru.time))
        << policy_kind_name(kind);
    EXPECT_GT(static_cast<double>(r.time),
              0.25 * static_cast<double>(lru.time))
        << policy_kind_name(kind);
  }
}

}  // namespace
}  // namespace ppg
