#include <gtest/gtest.h>

#include <unordered_set>

#include "trace/adversarial.hpp"
#include "util/math_util.hpp"

namespace ppg {
namespace {

AdversarialParams small_params() {
  AdversarialParams p;
  p.ell = 4;
  p.a = 1;
  p.alpha = 0.05;  // keep the instance tiny for unit tests
  p.suffix_phase_factor = 1.0;
  return p;
}

TEST(AdversarialParams, DerivedQuantities) {
  const AdversarialParams p = small_params();
  EXPECT_EQ(p.num_procs(), 31u);          // 2^5 - 1
  EXPECT_EQ(p.cache_size(), 31u);         // p * 2^0
  EXPECT_EQ(p.num_families(), 3u);        // ell - log2(ell) + 1 = 4 - 2 + 1
  EXPECT_EQ(p.num_prefixed(), 7u);        // 2^3 - 1
  EXPECT_EQ(p.phase_length(), 30u * p.gamma());
}

TEST(AdversarialParams, PollutionIntervalHalvesPerPhase) {
  const AdversarialParams p = small_params();
  EXPECT_EQ(p.pollute_interval(0), 31u);
  EXPECT_EQ(p.pollute_interval(1), 15u);
  EXPECT_EQ(p.pollute_interval(2), 7u);
  EXPECT_EQ(p.pollute_interval(10), 1u);  // floors at 1
}

TEST(AdversarialInstance, HasOneTracePerProcessor) {
  const AdversarialInstance inst = make_adversarial_instance(small_params());
  EXPECT_EQ(inst.traces.num_procs(), inst.params.num_procs());
  EXPECT_EQ(inst.info.size(), inst.params.num_procs());
}

TEST(AdversarialInstance, FamilySizesAreGeometric) {
  const AdversarialInstance inst = make_adversarial_instance(small_params());
  std::vector<int> family_count(inst.params.num_families(), 0);
  int prefixed = 0;
  for (const auto& info : inst.info) {
    if (!info.prefixed) continue;
    ++prefixed;
    ASSERT_LT(info.family, family_count.size());
    ++family_count[info.family];
  }
  EXPECT_EQ(prefixed, static_cast<int>(inst.params.num_prefixed()));
  for (std::uint32_t i = 0; i < family_count.size(); ++i)
    EXPECT_EQ(family_count[i], 1 << i) << "family " << i;
}

TEST(AdversarialInstance, PhaseCountDecreasesWithFamily) {
  const AdversarialInstance inst = make_adversarial_instance(small_params());
  const std::uint32_t families = inst.params.num_families();
  for (const auto& info : inst.info) {
    if (!info.prefixed) continue;
    // Family i has families - i prefix phases (sigma^0..sigma^{f-1-i}).
    EXPECT_EQ(info.prefix_phases, families - info.family);
  }
}

TEST(AdversarialInstance, SuffixLengthsAllEqual) {
  const AdversarialInstance inst = make_adversarial_instance(small_params());
  const std::size_t expect = static_cast<std::size_t>(
      inst.params.suffix_phases()) * inst.params.phase_length();
  for (ProcId i = 0; i < inst.traces.num_procs(); ++i) {
    const std::size_t suffix =
        inst.traces.trace(i).size() - inst.info[i].prefix_requests;
    EXPECT_EQ(suffix, expect) << "proc " << i;
  }
}

TEST(AdversarialInstance, SuffixPagesAreSingleUse) {
  const AdversarialInstance inst = make_adversarial_instance(small_params());
  for (ProcId i = 0; i < inst.traces.num_procs(); ++i) {
    const Trace& t = inst.traces.trace(i);
    std::unordered_set<PageId> seen;
    for (std::size_t r = inst.info[i].prefix_requests; r < t.size(); ++r)
      EXPECT_TRUE(seen.insert(t[r]).second) << "proc " << i << " pos " << r;
  }
}

TEST(AdversarialInstance, TracesAreDisjoint) {
  const AdversarialInstance inst = make_adversarial_instance(small_params());
  EXPECT_TRUE(inst.traces.validate_disjoint());
}

TEST(AdversarialInstance, PrefixHasExpectedPollutionRate) {
  const AdversarialInstance inst = make_adversarial_instance(small_params());
  // Find a family-0 sequence: its first phase is sigma^0 with interval p.
  for (ProcId i = 0; i < inst.traces.num_procs(); ++i) {
    if (!inst.info[i].prefixed || inst.info[i].family != 0) continue;
    const Trace& t = inst.traces.trace(i);
    const std::size_t phase_len = inst.params.phase_length();
    // Repeaters dominate: the number of distinct pages in phase 0 is about
    // (k-1) repeaters + phase_len/p polluters.
    std::unordered_set<PageId> distinct;
    for (std::size_t r = 0; r < phase_len; ++r) distinct.insert(t[r]);
    const std::size_t k = inst.params.cache_size();
    const std::size_t expected_polluters =
        phase_len / inst.params.pollute_interval(0);
    EXPECT_NEAR(static_cast<double>(distinct.size()),
                static_cast<double>(k - 1 + expected_polluters),
                2.0);
    return;
  }
  FAIL() << "no family-0 sequence found";
}

TEST(AdversarialInstance, GammaScalesWithAlpha) {
  AdversarialParams p = small_params();
  p.alpha = 1.0;
  EXPECT_EQ(p.gamma(), 2 * p.cache_size());
  p.alpha = 0.5;
  EXPECT_EQ(p.gamma(), p.cache_size());
}

}  // namespace
}  // namespace ppg
