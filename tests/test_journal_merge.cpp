// Merge-validation suite: merge_journals is the checkpoint where every
// distributed-sweep invariant is proven rather than assumed. Each test
// violates exactly one invariant and checks for the structured kBadInput
// naming the offending shard — and that no output journal is published on
// failure. scripts/tier1.sh re-runs this suite under AddressSanitizer.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_support/journal_merge.hpp"
#include "bench_support/parallel_sweep.hpp"
#include "bench_support/sweep_journal.hpp"
#include "util/error.hpp"

namespace ppg {
namespace {

std::string payload_for(std::uint32_t stage, std::uint64_t index) {
  std::ostringstream os;
  os << "stage=" << stage << " index=" << index;
  return os.str();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void spill(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

bool file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

class JournalMerge : public ::testing::Test {
 protected:
  // A path under TempDir, registered for removal in TearDown.
  std::string temp_path(const std::string& name) {
    const std::string path = testing::TempDir() + "ppg_merge_" + name;
    std::remove(path.c_str());
    paths_.push_back(path);
    return path;
  }

  /// Writes a complete shard journal: every cell of `cells` owned by
  /// `spec`, in stages {0, 1}, with deterministic payloads.
  std::string make_shard(const std::string& base, const ShardSpec& spec,
                         std::uint64_t cells) {
    const std::string path = temp_path("shard_" +
                                       std::to_string(spec.index) + "_of_" +
                                       std::to_string(spec.count) +
                                       ".ppgjrnl");
    const auto journal =
        SweepJournal::create(path, apply_shard_binding(base, spec));
    for (std::uint32_t stage : {0u, 1u}) {
      for (std::uint64_t i = 0; i < cells; ++i) {
        if (spec.owns(i)) journal->append(stage, i, payload_for(stage, i));
      }
    }
    return path;
  }

  void expect_merge_fails(const std::vector<std::string>& shard_paths,
                          const std::string& out,
                          const std::string& message_fragment) {
    try {
      merge_journals(shard_paths, out);
      FAIL() << "merge accepted inputs that should be refused ("
             << message_fragment << ")";
    } catch (const PpgException& e) {
      EXPECT_EQ(e.error().code, ErrorCode::kBadInput);
      EXPECT_NE(e.error().message.find(message_fragment), std::string::npos)
          << "got: " << e.error().message;
    }
    EXPECT_FALSE(file_exists(out))
        << "failed merge must not publish an output journal";
  }

  void TearDown() override {
    for (const std::string& path : paths_) {
      std::remove(path.c_str());
      std::remove((path + ".lock").c_str());
    }
  }

  std::vector<std::string> paths_;
};

TEST_F(JournalMerge, RebuildsTheFullGridUnderTheBaseBinding) {
  const std::string base = "bench v1 quick=1";
  std::vector<std::string> shard_paths;
  for (std::uint32_t i = 0; i < 3; ++i)
    shard_paths.push_back(make_shard(base, ShardSpec{i, 3}, 7));
  const std::string out = temp_path("merged.ppgjrnl");

  const MergeStats stats = merge_journals(shard_paths, out);
  EXPECT_EQ(stats.num_shards, 3u);
  EXPECT_EQ(stats.num_records, 14u);  // 2 stages x 7 cells
  EXPECT_EQ(stats.binding, base);

  // The merged journal resumes as an *unsharded* run of the same sweep.
  const auto merged = SweepJournal::load(out);
  EXPECT_EQ(merged->binding(), base);
  ASSERT_EQ(merged->num_records(), 14u);
  for (std::uint32_t stage : {0u, 1u}) {
    for (std::uint64_t i = 0; i < 7; ++i) {
      const std::string* payload = merged->find(stage, i);
      ASSERT_NE(payload, nullptr) << "stage " << stage << " index " << i;
      EXPECT_EQ(*payload, payload_for(stage, i));
    }
  }
}

TEST_F(JournalMerge, OutputIsIndependentOfShardArgumentOrder) {
  const std::string base = "bench v1";
  std::vector<std::string> shard_paths;
  for (std::uint32_t i = 0; i < 4; ++i)
    shard_paths.push_back(make_shard(base, ShardSpec{i, 4}, 10));
  const std::string forward = temp_path("merged_forward.ppgjrnl");
  const std::string backward = temp_path("merged_backward.ppgjrnl");

  merge_journals(shard_paths, forward);
  std::vector<std::string> reversed(shard_paths.rbegin(), shard_paths.rend());
  merge_journals(reversed, backward);
  EXPECT_EQ(read_file(forward), read_file(backward));
  EXPECT_FALSE(read_file(forward).empty());
}

TEST_F(JournalMerge, SingleUnshardedJournalMergesAsACopy) {
  // Identity shard (0/1) folds to the bare base binding; merging it is a
  // validated copy, which keeps tooling uniform across sharded and
  // unsharded runs.
  const std::string path = make_shard("bench v1", ShardSpec{}, 5);
  const std::string out = temp_path("merged_single.ppgjrnl");
  const MergeStats stats = merge_journals({path}, out);
  EXPECT_EQ(stats.num_shards, 1u);
  EXPECT_EQ(stats.num_records, 10u);
  EXPECT_EQ(SweepJournal::load(out)->binding(), "bench v1");
}

TEST_F(JournalMerge, RefusesEmptyInput) {
  expect_merge_fails({}, temp_path("merged_empty.ppgjrnl"),
                     "nothing to merge");
}

TEST_F(JournalMerge, RefusesMissingShardJournal) {
  const std::string a = make_shard("bench v1", ShardSpec{0, 2}, 6);
  const std::string b = make_shard("bench v1", ShardSpec{1, 2}, 6);
  std::remove(b.c_str());
  const std::string out = temp_path("merged_missing.ppgjrnl");
  EXPECT_THROW(merge_journals({a, b}, out), PpgException);
  EXPECT_FALSE(file_exists(out));
}

TEST_F(JournalMerge, RefusesFewerJournalsThanShardCount) {
  const std::string a = make_shard("bench v1", ShardSpec{0, 3}, 6);
  const std::string b = make_shard("bench v1", ShardSpec{1, 3}, 6);
  expect_merge_fails({a, b}, temp_path("merged_short.ppgjrnl"),
                     "one journal per shard");
}

TEST_F(JournalMerge, RefusesDuplicateShardSlice) {
  const std::string a = make_shard("bench v1", ShardSpec{0, 2}, 6);
  expect_merge_fails({a, a}, temp_path("merged_dup.ppgjrnl"),
                     "two journals claim the same slice");
}

TEST_F(JournalMerge, RefusesMixedShardCounts) {
  const std::string a = make_shard("bench v1", ShardSpec{0, 2}, 6);
  const std::string b = make_shard("bench v1", ShardSpec{1, 3}, 6);
  // Two journals, counts {2, 3}: neither "count == #journals" nor "same
  // slicing" holds; the error must mention the count mismatch either way.
  expect_merge_fails({a, b}, temp_path("merged_mixed.ppgjrnl"),
                     "shard count mismatch");
}

TEST_F(JournalMerge, RefusesBindingBaseMismatch) {
  const std::string a = make_shard("bench v1 quick=1", ShardSpec{0, 2}, 6);
  const std::string b = make_shard("bench v1 quick=0", ShardSpec{1, 2}, 6);
  expect_merge_fails({a, b}, temp_path("merged_base.ppgjrnl"),
                     "different sweeps");
}

TEST_F(JournalMerge, RefusesForeignCellAsOverlap) {
  const std::string a = make_shard("bench v1", ShardSpec{0, 2}, 6);
  const std::string b = make_shard("bench v1", ShardSpec{1, 2}, 6);
  {
    // Shard 0 also claims index 1 — shard 1's cell. This is how two racing
    // writers (or a mis-sliced rerun) manifest at merge time.
    const auto journal =
        SweepJournal::open_resume(a, "bench v1 shard=0/2");
    journal->append(0, 1, "foreign");
  }
  expect_merge_fails({a, b}, temp_path("merged_overlap.ppgjrnl"), "overlap");
}

TEST_F(JournalMerge, RefusesInteriorGapNamingTheIncompleteShard) {
  const std::string base = "bench v1";
  const std::string a = temp_path("shard_gap_0_of_2.ppgjrnl");
  {
    // Shard 0 of 2 over 6 cells owns {0, 2, 4} but journaled only {0, 4}:
    // cell 2 was lost, not absent by design.
    const auto journal =
        SweepJournal::create(a, apply_shard_binding(base, ShardSpec{0, 2}));
    journal->append(0, 0, payload_for(0, 0));
    journal->append(0, 4, payload_for(0, 4));
  }
  const std::string b = temp_path("shard_gap_1_of_2.ppgjrnl");
  {
    const auto journal =
        SweepJournal::create(b, apply_shard_binding(base, ShardSpec{1, 2}));
    for (std::uint64_t i : {1u, 3u, 5u})
      journal->append(0, i, payload_for(0, i));
  }
  const std::string out = temp_path("merged_gap.ppgjrnl");
  try {
    merge_journals({a, b}, out);
    FAIL() << "merge accepted a shard with a lost interior cell";
  } catch (const PpgException& e) {
    EXPECT_EQ(e.error().code, ErrorCode::kBadInput);
    EXPECT_NE(e.error().message.find("missing cell (stage 0, index 2)"),
              std::string::npos)
        << "got: " << e.error().message;
    // The error points the operator at the shard to resume.
    EXPECT_NE(e.error().message.find("0/2"), std::string::npos);
    EXPECT_NE(e.error().message.find("resume"), std::string::npos);
  }
  EXPECT_FALSE(file_exists(out));
}

TEST_F(JournalMerge, RefusesTornShardInsteadOfRepairing) {
  const std::string a = make_shard("bench v1", ShardSpec{0, 2}, 6);
  const std::string b = make_shard("bench v1", ShardSpec{1, 2}, 6);
  const std::string whole = read_file(b);
  ASSERT_GT(whole.size(), 3u);
  spill(b, whole.substr(0, whole.size() - 3));
  // open_resume would truncate the torn tail and carry on; merge must not —
  // the shard worker owns the repair (resume recomputes the torn cell).
  const std::string out = temp_path("merged_torn.ppgjrnl");
  EXPECT_THROW(merge_journals({a, b}, out), PpgException);
  EXPECT_FALSE(file_exists(out));
}

}  // namespace
}  // namespace ppg
