// run_checked: scheduler misbehaviour and watchdog trips come back as
// structured RunStatus values instead of aborting the process, and a clean
// checked run is bit-identical to the legacy run().
#include <gtest/gtest.h>

#include <memory>

#include "core/parallel_engine.hpp"
#include "core/scheduler_factory.hpp"
#include "test_helpers.hpp"
#include "trace/workload.hpp"

namespace ppg {
namespace {

MultiTrace tiny_multitrace() {
  MultiTrace mt;
  mt.add(test::make_trace({1, 2, 3, 1, 2, 3, 4, 5}));
  mt.add(test::make_trace({7, 8, 7, 8, 9}));
  return mt;
}

/// Issues boxes that stall forever — only the watchdog can stop the run.
class StallingScheduler final : public BoxScheduler {
 public:
  void start(const SchedulerContext&, const EngineView&) override {}
  BoxAssignment next_box(ProcId, Time now, const EngineView&) override {
    const Time far = now + (Time{1} << 50);
    return BoxAssignment{1, far, far + 8};
  }
  const char* name() const override { return "STALLER"; }
};

/// Returns a malformed (zero-height) box on the second request.
class EventuallyMalformedScheduler final : public BoxScheduler {
 public:
  void start(const SchedulerContext&, const EngineView&) override {}
  BoxAssignment next_box(ProcId, Time now, const EngineView&) override {
    if (calls_++ == 0) return BoxAssignment{4, now, now + 16};
    return BoxAssignment{0, now, now + 16};
  }
  const char* name() const override { return "MALFORMED"; }

 private:
  int calls_ = 0;
};

TEST(RunChecked, WatchdogReturnsStructuredTimeout) {
  const MultiTrace mt = tiny_multitrace();
  StallingScheduler scheduler;
  EngineConfig ec;
  ec.cache_size = 8;
  ec.miss_cost = 2;
  ec.max_time = 1 << 20;
  const CheckedRun run = run_parallel_checked(mt, scheduler, ec);
  ASSERT_FALSE(run.status.ok());
  EXPECT_EQ(run.status.error.code, ErrorCode::kWatchdogTimeout);
  EXPECT_NE(run.status.error.message.find("max_time"), std::string::npos);
  EXPECT_TRUE(run.status.replay_dump_path.empty());  // no path configured
}

TEST(RunChecked, MalformedBoxReturnsContractViolation) {
  const MultiTrace mt = tiny_multitrace();
  EventuallyMalformedScheduler scheduler;
  EngineConfig ec;
  ec.cache_size = 8;
  ec.miss_cost = 2;
  const CheckedRun run = run_parallel_checked(mt, scheduler, ec);
  ASSERT_FALSE(run.status.ok());
  EXPECT_EQ(run.status.error.code, ErrorCode::kContractViolation);
  EXPECT_NE(run.status.error.message.find("zero-height"), std::string::npos);
  EXPECT_NE(run.status.error.proc, kInvalidProc);
}

TEST(RunChecked, EventBudgetReturnsStructuredExhaustion) {
  const MultiTrace mt = tiny_multitrace();
  auto scheduler = make_scheduler(SchedulerKind::kDetPar, 5);
  EngineConfig ec;
  ec.cache_size = 8;
  ec.miss_cost = 2;
  ec.max_events = 3;  // far fewer steps than the run needs
  const CheckedRun run = run_parallel_checked(mt, *scheduler, ec);
  ASSERT_FALSE(run.status.ok());
  EXPECT_EQ(run.status.error.code, ErrorCode::kCellBudgetExceeded);
  EXPECT_NE(run.status.error.message.find("max_events"), std::string::npos);
}

TEST(RunChecked, EventBudgetIsDeterministic) {
  // The budget counts simulated steps, not wall-clock: two runs with the
  // same tight budget fail at the identical simulated time.
  const MultiTrace mt = tiny_multitrace();
  EngineConfig ec;
  ec.cache_size = 8;
  ec.miss_cost = 2;
  ec.max_events = 2;
  auto a = make_scheduler(SchedulerKind::kDetPar, 5);
  auto b = make_scheduler(SchedulerKind::kDetPar, 5);
  const CheckedRun first = run_parallel_checked(mt, *a, ec);
  const CheckedRun second = run_parallel_checked(mt, *b, ec);
  ASSERT_FALSE(first.status.ok());
  ASSERT_FALSE(second.status.ok());
  EXPECT_EQ(first.status.error.time, second.status.error.time);
  EXPECT_EQ(first.status.error.message, second.status.error.message);
}

TEST(RunChecked, GenerousEventBudgetDoesNotPerturbResults) {
  const MultiTrace mt = tiny_multitrace();
  EngineConfig ec;
  ec.cache_size = 8;
  ec.miss_cost = 2;
  auto unlimited = make_scheduler(SchedulerKind::kDetPar, 5);
  const CheckedRun want = run_parallel_checked(mt, *unlimited, ec);
  ASSERT_TRUE(want.status.ok());

  ec.max_events = std::uint64_t{1} << 40;
  auto budgeted = make_scheduler(SchedulerKind::kDetPar, 5);
  const CheckedRun got = run_parallel_checked(mt, *budgeted, ec);
  ASSERT_TRUE(got.status.ok()) << got.status.error.to_string();
  EXPECT_EQ(got.result.makespan, want.result.makespan);
  EXPECT_EQ(got.result.num_boxes, want.result.num_boxes);
}

TEST(RunChecked, CleanRunMatchesLegacyRun) {
  WorkloadParams wp;
  wp.num_procs = 4;
  wp.cache_size = 32;
  wp.requests_per_proc = 800;
  wp.seed = 6;
  wp.miss_cost = 4;
  const MultiTrace mt = make_workload(WorkloadKind::kZipf, wp);
  EngineConfig ec;
  ec.cache_size = 32;
  ec.miss_cost = 4;

  auto legacy = make_scheduler(SchedulerKind::kDetPar, 5);
  const ParallelRunResult want = run_parallel(mt, *legacy, ec);

  auto checked = make_scheduler(SchedulerKind::kDetPar, 5);
  const CheckedRun run = run_parallel_checked(mt, *checked, ec);
  ASSERT_TRUE(run.status.ok()) << run.status.error.to_string();
  EXPECT_EQ(run.result.makespan, want.makespan);
  EXPECT_EQ(run.result.num_boxes, want.num_boxes);
  EXPECT_EQ(run.result.hits, want.hits);
  EXPECT_EQ(run.result.misses, want.misses);
  EXPECT_EQ(run.result.peak_concurrent_height, want.peak_concurrent_height);
}

}  // namespace
}  // namespace ppg
