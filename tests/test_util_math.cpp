#include <gtest/gtest.h>

#include "util/math_util.hpp"

namespace ppg {
namespace {

TEST(MathUtil, Ilog2Floor) {
  EXPECT_EQ(ilog2_floor(1), 0u);
  EXPECT_EQ(ilog2_floor(2), 1u);
  EXPECT_EQ(ilog2_floor(3), 1u);
  EXPECT_EQ(ilog2_floor(4), 2u);
  EXPECT_EQ(ilog2_floor(1023), 9u);
  EXPECT_EQ(ilog2_floor(1024), 10u);
  EXPECT_EQ(ilog2_floor(UINT64_MAX), 63u);
}

TEST(MathUtil, Ilog2Ceil) {
  EXPECT_EQ(ilog2_ceil(1), 0u);
  EXPECT_EQ(ilog2_ceil(2), 1u);
  EXPECT_EQ(ilog2_ceil(3), 2u);
  EXPECT_EQ(ilog2_ceil(4), 2u);
  EXPECT_EQ(ilog2_ceil(5), 3u);
  EXPECT_EQ(ilog2_ceil(1024), 10u);
  EXPECT_EQ(ilog2_ceil(1025), 11u);
}

TEST(MathUtil, Pow2Floor) {
  EXPECT_EQ(pow2_floor(1), 1u);
  EXPECT_EQ(pow2_floor(2), 2u);
  EXPECT_EQ(pow2_floor(3), 2u);
  EXPECT_EQ(pow2_floor(100), 64u);
  EXPECT_EQ(pow2_floor(128), 128u);
}

TEST(MathUtil, Pow2Ceil) {
  EXPECT_EQ(pow2_ceil(1), 1u);
  EXPECT_EQ(pow2_ceil(3), 4u);
  EXPECT_EQ(pow2_ceil(100), 128u);
  EXPECT_EQ(pow2_ceil(128), 128u);
}

TEST(MathUtil, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ULL << 40));
  EXPECT_FALSE(is_pow2((1ULL << 40) + 1));
}

TEST(MathUtil, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 3), 0u);
  EXPECT_EQ(ceil_div(1, 3), 1u);
  EXPECT_EQ(ceil_div(3, 3), 1u);
  EXPECT_EQ(ceil_div(4, 3), 2u);
  EXPECT_EQ(ceil_div(9, 3), 3u);
}

TEST(MathUtil, ShlClamped) {
  EXPECT_EQ(shl_clamped(1, 3, 100), 8u);
  EXPECT_EQ(shl_clamped(1, 7, 100), 100u);  // 128 > 100 clamps
  EXPECT_EQ(shl_clamped(5, 70, 1000), 1000u);  // shift overflow clamps
}

class Pow2Roundtrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Pow2Roundtrip, FloorCeilBracket) {
  const std::uint64_t x = GetParam();
  EXPECT_LE(pow2_floor(x), x);
  EXPECT_GE(pow2_ceil(x), x);
  EXPECT_TRUE(is_pow2(pow2_floor(x)));
  EXPECT_TRUE(is_pow2(pow2_ceil(x)));
  if (is_pow2(x)) {
    EXPECT_EQ(pow2_floor(x), x);
    EXPECT_EQ(pow2_ceil(x), x);
  } else {
    EXPECT_EQ(pow2_ceil(x), 2 * pow2_floor(x));
  }
}

INSTANTIATE_TEST_SUITE_P(Values, Pow2Roundtrip,
                         ::testing::Values(1, 2, 3, 5, 7, 8, 9, 15, 16, 17,
                                           31, 33, 100, 1000, 4095, 4096,
                                           4097, 1'000'000));

}  // namespace
}  // namespace ppg
