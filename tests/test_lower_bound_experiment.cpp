// Regression guard for the headline experiment (E6): the Theorem 4
// instance must keep forcing every oblivious scheduler to a ratio > 1
// against the constructed OPT, with all schedulers essentially tied —
// small enough to run inside the unit suite.
#include <gtest/gtest.h>

#include "core/parallel_engine.hpp"
#include "core/scheduler_factory.hpp"
#include "opt/constructed_opt.hpp"
#include "opt/opt_bounds.hpp"
#include "trace/adversarial.hpp"

namespace ppg {
namespace {

struct AdvSetup {
  AdversarialInstance instance;
  Time miss_cost;
};

AdvSetup build(std::uint32_t ell) {
  AdversarialParams params;
  params.ell = ell;
  params.a = 1;
  params.alpha = 1.0;
  params.suffix_phase_factor = 0.5;
  return AdvSetup{make_adversarial_instance(params),
               2 * params.cache_size()};
}

TEST(LowerBoundExperiment, EveryObliviousSchedulerPaysOnEll4) {
  const AdvSetup setup = build(4);
  const ConstructedOptResult opt =
      run_constructed_opt(setup.instance, setup.miss_cost);
  ASSERT_GT(opt.makespan, 0u);

  EngineConfig ec;
  ec.cache_size = setup.instance.params.cache_size();
  ec.miss_cost = setup.miss_cost;
  ec.track_memory_timeline = false;

  Time min_makespan = kTimeInfinity;
  Time max_makespan = 0;
  for (const SchedulerKind kind :
       {SchedulerKind::kBlackboxGreenDet, SchedulerKind::kDetPar,
        SchedulerKind::kRandPar, SchedulerKind::kEqui}) {
    auto scheduler = make_scheduler(kind, 5);
    const ParallelRunResult r =
        run_parallel(setup.instance.traces, *scheduler, ec);
    min_makespan = std::min(min_makespan, r.makespan);
    max_makespan = std::max(max_makespan, r.makespan);
  }
  // Forced gap: at ell = 4 the measured ratio is ~2.2; guard at > 1.5.
  EXPECT_GT(static_cast<double>(min_makespan),
            1.5 * static_cast<double>(opt.makespan));
  // And the instance is universal: all schedulers land within 5%.
  EXPECT_LT(static_cast<double>(max_makespan),
            1.05 * static_cast<double>(min_makespan));
}

TEST(LowerBoundExperiment, GapGrowsWithEll) {
  double prev_ratio = 0.0;
  for (const std::uint32_t ell : {3u, 4u}) {
    const AdvSetup setup = build(ell);
    const ConstructedOptResult opt =
        run_constructed_opt(setup.instance, setup.miss_cost);
    EngineConfig ec;
    ec.cache_size = setup.instance.params.cache_size();
    ec.miss_cost = setup.miss_cost;
    ec.track_memory_timeline = false;
    auto scheduler = make_scheduler(SchedulerKind::kBlackboxGreenDet, 5);
    const ParallelRunResult r =
        run_parallel(setup.instance.traces, *scheduler, ec);
    const double ratio = static_cast<double>(r.makespan) /
                         static_cast<double>(opt.makespan);
    EXPECT_GT(ratio, prev_ratio) << "ell " << ell;
    prev_ratio = ratio;
  }
}

TEST(LowerBoundExperiment, ConstructedOptBeatsCertifiedBoundSandwich) {
  const AdvSetup setup = build(3);
  const ConstructedOptResult opt =
      run_constructed_opt(setup.instance, setup.miss_cost);
  OptBoundsConfig oc;
  oc.cache_size = setup.instance.params.cache_size();
  oc.miss_cost = setup.miss_cost;
  const OptBounds bounds = compute_opt_bounds(setup.instance.traces, oc);
  EXPECT_LE(bounds.lower_bound(), opt.makespan);
}

}  // namespace
}  // namespace ppg
