#include <gtest/gtest.h>

#include <cmath>

#include "bench_support/experiment.hpp"
#include "trace/workload.hpp"

namespace ppg {
namespace {

TEST(RunInstance, ProducesRatiosForAllSchedulers) {
  WorkloadParams wp;
  wp.num_procs = 4;
  wp.cache_size = 16;
  wp.requests_per_proc = 600;
  const MultiTrace mt = make_workload(WorkloadKind::kHeterogeneousMix, wp);

  ExperimentConfig config;
  config.cache_size = 16;
  config.miss_cost = 4;
  const InstanceOutcome outcome =
      run_instance(mt, all_scheduler_kinds(), config);

  EXPECT_EQ(outcome.outcomes.size(), all_scheduler_kinds().size() + 1);
  for (const SchedulerOutcome& so : outcome.outcomes) {
    EXPECT_GE(so.makespan_ratio, 1.0) << so.name;
    EXPECT_GT(so.result.makespan, 0u) << so.name;
    EXPECT_LE(so.mean_ct_ratio, so.makespan_ratio + 1e-9) << so.name;
  }
}

TEST(RunInstance, GlobalLruCanBeExcluded) {
  WorkloadParams wp;
  wp.num_procs = 2;
  wp.cache_size = 8;
  wp.requests_per_proc = 200;
  const MultiTrace mt = make_workload(WorkloadKind::kZipf, wp);
  ExperimentConfig config;
  config.cache_size = 8;
  config.miss_cost = 2;
  config.include_global_lru = false;
  const InstanceOutcome outcome =
      run_instance(mt, {SchedulerKind::kDetPar}, config);
  EXPECT_EQ(outcome.outcomes.size(), 1u);
  EXPECT_EQ(outcome.outcomes[0].name, "DET-PAR");
}

TEST(ScalingCollector, FitsPerScheduler) {
  ScalingCollector collector;
  for (double p : {2.0, 4.0, 8.0, 16.0}) {
    collector.add("A", p, 1.0 * std::log2(p) + 2.0);
    collector.add("B", p, 3.0);
  }
  const Table table = collector.fit_table();
  ASSERT_EQ(table.num_rows(), 2u);
  // Scheduler A grows logarithmically with unit slope; B is flat.
  EXPECT_EQ(table.at(0, 0), "A");
  EXPECT_NEAR(std::stod(table.at(0, 1)), 1.0, 0.01);
  EXPECT_NEAR(std::stod(table.at(1, 1)), 0.0, 0.01);
}

}  // namespace
}  // namespace ppg
