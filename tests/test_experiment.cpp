#include <gtest/gtest.h>

#include <cmath>

#include "bench_support/experiment.hpp"
#include "core/replay.hpp"
#include "trace/workload.hpp"

namespace ppg {
namespace {

TEST(RunInstance, ProducesRatiosForAllSchedulers) {
  WorkloadParams wp;
  wp.num_procs = 4;
  wp.cache_size = 16;
  wp.requests_per_proc = 600;
  const MultiTrace mt = make_workload(WorkloadKind::kHeterogeneousMix, wp);

  ExperimentConfig config;
  config.cache_size = 16;
  config.miss_cost = 4;
  const InstanceOutcome outcome =
      run_instance(mt, all_scheduler_kinds(), config);

  EXPECT_EQ(outcome.outcomes.size(), all_scheduler_kinds().size() + 1);
  for (const SchedulerOutcome& so : outcome.outcomes) {
    EXPECT_GE(so.makespan_ratio, 1.0) << so.name;
    EXPECT_GT(so.result.makespan, 0u) << so.name;
    EXPECT_LE(so.mean_ct_ratio, so.makespan_ratio + 1e-9) << so.name;
  }
}

TEST(RunInstance, GlobalLruCanBeExcluded) {
  WorkloadParams wp;
  wp.num_procs = 2;
  wp.cache_size = 8;
  wp.requests_per_proc = 200;
  const MultiTrace mt = make_workload(WorkloadKind::kZipf, wp);
  ExperimentConfig config;
  config.cache_size = 8;
  config.miss_cost = 2;
  config.include_global_lru = false;
  const InstanceOutcome outcome =
      run_instance(mt, {SchedulerKind::kDetPar}, config);
  EXPECT_EQ(outcome.outcomes.size(), 1u);
  EXPECT_EQ(outcome.outcomes[0].name, "DET-PAR");
}

// A faulty scheduler must cost exactly its own cell, not the sweep: every
// box-scheduler cell reports a structured failure plus a replay dump, the
// GLOBAL-LRU baseline still completes, and a dump re-executes to the same
// violation.
TEST(RunInstance, CapturesPerCellFailuresFromInjectedFaults) {
  WorkloadParams wp;
  wp.num_procs = 4;
  wp.cache_size = 16;
  wp.requests_per_proc = 500;
  const MultiTrace mt = make_workload(WorkloadKind::kZipf, wp);

  ExperimentConfig config;
  config.cache_size = 16;
  config.miss_cost = 4;
  FaultInjectionConfig fault;
  fault.fault = FaultClass::kZeroHeight;
  config.inject_fault = fault;
  config.replay_dump_dir = ::testing::TempDir();

  const InstanceOutcome outcome =
      run_instance(mt, all_scheduler_kinds(), config);
  ASSERT_EQ(outcome.outcomes.size(), all_scheduler_kinds().size() + 1);
  EXPECT_EQ(outcome.num_failed(), all_scheduler_kinds().size());

  for (const SchedulerOutcome& so : outcome.outcomes) {
    if (so.name == "GLOBAL-LRU") {
      // The shared-pool baseline is simulated directly; the injected box
      // fault cannot reach it.
      EXPECT_TRUE(so.status.ok()) << so.status.error.to_string();
      EXPECT_GT(so.makespan_ratio, 0.0);
      continue;
    }
    EXPECT_FALSE(so.status.ok()) << so.name;
    EXPECT_EQ(so.status.error.code, ErrorCode::kContractViolation) << so.name;
    EXPECT_FALSE(so.status.replay_dump_path.empty()) << so.name;
    EXPECT_EQ(so.makespan_ratio, 0.0) << so.name;

    const ReplayDump dump = load_replay_dump(so.status.replay_dump_path);
    EXPECT_EQ(dump.scheduler_spec,
              std::string("INJECT(zero-height,") + so.name + ")");
    const CheckedRun rerun = run_replay(dump);
    ASSERT_FALSE(rerun.status.ok()) << so.name;
    EXPECT_EQ(rerun.status.error.code, ErrorCode::kContractViolation)
        << so.name;
  }
}

TEST(RunInstance, CellBudgetSurfacesAsStructuredOutcome) {
  WorkloadParams wp;
  wp.num_procs = 2;
  wp.cache_size = 8;
  wp.requests_per_proc = 200;
  const MultiTrace mt = make_workload(WorkloadKind::kZipf, wp);
  ExperimentConfig config;
  config.cache_size = 8;
  config.miss_cost = 2;
  config.include_global_lru = false;
  config.cell_event_budget = 4;  // far fewer engine steps than needed
  const InstanceOutcome outcome =
      run_instance(mt, {SchedulerKind::kDetPar}, config);
  ASSERT_EQ(outcome.outcomes.size(), 1u);
  EXPECT_FALSE(outcome.outcomes[0].status.ok());
  EXPECT_EQ(outcome.outcomes[0].status.error.code,
            ErrorCode::kCellBudgetExceeded);
  EXPECT_EQ(outcome.num_failed(), 1u);
}

TEST(RunInstance, RetriesAreDeterministicAndBounded) {
  WorkloadParams wp;
  wp.num_procs = 2;
  wp.cache_size = 8;
  wp.requests_per_proc = 200;
  const MultiTrace mt = make_workload(WorkloadKind::kZipf, wp);
  ExperimentConfig config;
  config.cache_size = 8;
  config.miss_cost = 2;
  config.include_global_lru = false;

  // A clean cell with retries enabled is bit-identical to one without:
  // the first attempt succeeds, so no retry runs.
  const InstanceOutcome base =
      run_instance(mt, {SchedulerKind::kDetPar}, config);
  config.cell_retries = 3;
  const InstanceOutcome with_retries =
      run_instance(mt, {SchedulerKind::kDetPar}, config);
  ASSERT_TRUE(with_retries.outcomes[0].status.ok());
  EXPECT_EQ(with_retries.outcomes[0].result.makespan,
            base.outcomes[0].result.makespan);

  // A deterministic fault fails every same-seed attempt identically: the
  // retry loop is bounded and the final outcome is still the structured
  // failure, not a hang or a different error.
  FaultInjectionConfig fault;
  fault.fault = FaultClass::kZeroHeight;
  config.inject_fault = fault;
  const InstanceOutcome failed =
      run_instance(mt, {SchedulerKind::kDetPar}, config);
  ASSERT_FALSE(failed.outcomes[0].status.ok());
  EXPECT_EQ(failed.outcomes[0].status.error.code,
            ErrorCode::kContractViolation);
  config.cell_retries = 0;
  const InstanceOutcome failed_once =
      run_instance(mt, {SchedulerKind::kDetPar}, config);
  EXPECT_EQ(failed.outcomes[0].status.error.message,
            failed_once.outcomes[0].status.error.message);
}

TEST(ScalingCollector, FitsPerScheduler) {
  ScalingCollector collector;
  for (double p : {2.0, 4.0, 8.0, 16.0}) {
    collector.add("A", p, 1.0 * std::log2(p) + 2.0);
    collector.add("B", p, 3.0);
  }
  const Table table = collector.fit_table();
  ASSERT_EQ(table.num_rows(), 2u);
  // Scheduler A grows logarithmically with unit slope; B is flat.
  EXPECT_EQ(table.at(0, 0), "A");
  EXPECT_NEAR(std::stod(table.at(0, 1)), 1.0, 0.01);
  EXPECT_NEAR(std::stod(table.at(1, 1)), 0.0, 0.01);
}

}  // namespace
}  // namespace ppg
