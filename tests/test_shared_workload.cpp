#include <gtest/gtest.h>

#include "core/global_lru.hpp"
#include "core/parallel_engine.hpp"
#include "core/scheduler_factory.hpp"
#include "trace/shared_workload.hpp"

namespace ppg {
namespace {

SharedWorkloadParams base_params(double sigma) {
  SharedWorkloadParams sp;
  sp.num_procs = 8;
  sp.cache_size = 64;
  sp.requests_per_proc = 4000;
  sp.seed = 5;
  sp.sharing_fraction = sigma;
  return sp;
}

TEST(SharedWorkload, ZeroSharingIsDisjoint) {
  const MultiTrace mt = make_shared_workload(base_params(0.0));
  EXPECT_TRUE(mt.validate_disjoint());
  EXPECT_DOUBLE_EQ(measured_sharing_fraction(mt), 0.0);
}

TEST(SharedWorkload, SharingFractionIsRespected) {
  for (const double sigma : {0.25, 0.5, 0.9}) {
    const MultiTrace mt = make_shared_workload(base_params(sigma));
    EXPECT_FALSE(mt.validate_disjoint()) << sigma;
    EXPECT_NEAR(measured_sharing_fraction(mt), sigma, 0.05) << sigma;
  }
}

TEST(SharedWorkload, FullSharingHitsEveryTrace) {
  const MultiTrace mt = make_shared_workload(base_params(1.0));
  EXPECT_NEAR(measured_sharing_fraction(mt), 1.0, 1e-9);
}

TEST(Privatize, RestoresDisjointness) {
  const MultiTrace mt = make_shared_workload(base_params(0.5));
  const MultiTrace priv = privatize(mt);
  EXPECT_TRUE(priv.validate_disjoint());
  EXPECT_EQ(priv.total_requests(), mt.total_requests());
  // Per-trace structure preserved: same intra-trace equality pattern.
  for (ProcId i = 0; i < mt.num_procs(); ++i) {
    const Trace& a = mt.trace(i);
    const Trace& b = priv.trace(i);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a.distinct_pages(), b.distinct_pages());
    for (std::size_t r = 1; r < a.size(); ++r)
      EXPECT_EQ(a[r] == a[r - 1], b[r] == b[r - 1]);
  }
}

TEST(Privatize, NoSharedPagesIsIdentity) {
  const MultiTrace mt = make_shared_workload(base_params(0.0));
  const MultiTrace priv = privatize(mt);
  for (ProcId i = 0; i < mt.num_procs(); ++i)
    EXPECT_EQ(priv.trace(i).requests(), mt.trace(i).requests());
}

TEST(SharedWorkload, GlobalLruBenefitsFromSharing) {
  // At a high sharing fraction, the shared pool serves one copy of the
  // region while the privatized run must duplicate it p times: GLOBAL-LRU
  // on the shared trace must beat GLOBAL-LRU on the privatized one.
  const MultiTrace shared = make_shared_workload(base_params(0.9));
  const MultiTrace priv = privatize(shared);
  GlobalLruConfig gc;
  gc.cache_size = 64;
  gc.miss_cost = 16;
  const ParallelRunResult g_shared = run_global_lru(shared, gc);
  const ParallelRunResult g_priv = run_global_lru(priv, gc);
  EXPECT_LT(g_shared.misses, g_priv.misses / 2);
}

TEST(SharedWorkload, BoxSchedulerRunsOnPrivatizedInput) {
  const MultiTrace priv = privatize(make_shared_workload(base_params(0.5)));
  auto scheduler = make_scheduler(SchedulerKind::kDetPar);
  EngineConfig ec;
  ec.cache_size = 64;
  ec.miss_cost = 16;
  const ParallelRunResult r = run_parallel(priv, *scheduler, ec);
  EXPECT_EQ(r.hits + r.misses, priv.total_requests());
}

}  // namespace
}  // namespace ppg
